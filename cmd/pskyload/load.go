package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"pskyline"
	"pskyline/internal/streamgen"
)

// sink is the system under test: it accepts one request's worth of elements,
// blocking until the system has taken responsibility for them.
type sink interface {
	push(es []pskyline.Element) error
	// visible reports the monitor's internal ingest-to-visibility latency
	// view, nil when unavailable (HTTP targets, -no-latency).
	visible() *pskyline.LatencyMetrics
	close() error
}

// inprocSink drives a monitor built inside the harness process.
type inprocSink struct {
	op pskyline.Operator
}

func newInprocSink(cfg config) (*inprocSink, error) {
	opt := pskyline.Options{
		Dims: cfg.dims, Window: cfg.window, Thresholds: cfg.qs,
		Latency: pskyline.LatencyOptions{Disable: cfg.noLat},
	}
	switch cfg.mode {
	case "sync":
	case "async":
		opt.AsyncQueue = cfg.async
	case "sharded":
		sm, err := pskyline.NewSharded(pskyline.ShardedOptions{
			Options: opt, Shards: cfg.shards,
		})
		if err != nil {
			return nil, err
		}
		return &inprocSink{op: sm}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q: want sync, async or sharded", cfg.mode)
	}
	m, err := pskyline.NewMonitor(opt)
	if err != nil {
		return nil, err
	}
	return &inprocSink{op: m}, nil
}

func (s *inprocSink) push(es []pskyline.Element) error {
	if len(es) == 1 {
		_, err := s.op.Push(es[0])
		return err
	}
	_, err := s.op.PushBatch(es)
	return err
}

// visible drains the operator (so async queues count) and scrapes its
// instrumentation. For sharded operators it reports the worst shard's
// quantiles — the latency a query against the merged surface can observe.
func (s *inprocSink) visible() *pskyline.LatencyMetrics {
	s.op.Drain()
	switch m := s.op.(type) {
	case *pskyline.Monitor:
		return m.Metrics().Latency
	case *pskyline.ShardedMonitor:
		var worst *pskyline.LatencyMetrics
		for i := 0; i < m.NumShards(); i++ {
			lm := m.Shard(i).Metrics().Latency
			if lm == nil {
				return nil
			}
			if worst == nil || lm.Visible.P99Ns > worst.Visible.P99Ns {
				worst = lm
			}
		}
		return worst
	}
	return nil
}

func (s *inprocSink) close() error { return s.op.Close() }

// httpSink POSTs NDJSON batches to a pskyline serve-mode host.
type httpSink struct {
	url    string
	client *http.Client
	bufs   sync.Pool
}

func newHTTPSink(cfg config) *httpSink {
	return &httpSink{
		url:    strings0(cfg.target) + "/streams/" + cfg.stream + "/push",
		client: &http.Client{Timeout: 30 * time.Second},
		bufs:   sync.Pool{New: func() any { return new(bytes.Buffer) }},
	}
}

// strings0 trims a single trailing slash.
func strings0(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

func (s *httpSink) push(es []pskyline.Element) error {
	buf := s.bufs.Get().(*bytes.Buffer)
	defer func() { buf.Reset(); s.bufs.Put(buf) }()
	enc := json.NewEncoder(buf)
	for i := range es {
		if err := enc.Encode(&es[i]); err != nil {
			return err
		}
	}
	resp, err := s.client.Post(s.url, "application/x-ndjson", buf)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("push: status %d", resp.StatusCode)
	}
	return nil
}

func (s *httpSink) visible() *pskyline.LatencyMetrics { return nil }
func (s *httpSink) close() error                      { return nil }

// arrival is one scheduled request: a batch of elements due at sched.
type arrival struct {
	sched time.Time
	els   []pskyline.Element
	warm  bool
}

// rateResult summarizes one offered rate: exact external quantiles (scheduled
// arrival → completion) plus the monitor's internal visibility view when
// available. All durations are milliseconds.
type rateResult struct {
	Label    string  `json:"label"`
	Mode     string  `json:"mode"`
	Tracking bool    `json:"latency_tracking"`
	Dist     string  `json:"dist"`
	Dims     int     `json:"dims"`
	Window   int     `json:"window"`
	Batch    int     `json:"batch"`
	Workers  int     `json:"workers"`
	Shards   int     `json:"shards,omitempty"`
	Async    int     `json:"async,omitempty"`
	Offered  float64 `json:"offered_rate"`
	Achieved float64 `json:"achieved_rate"`

	Scheduled int `json:"scheduled"`
	Completed int `json:"completed"`
	Dropped   int `json:"dropped"`

	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P90Ms   float64 `json:"p90_ms"`
	P99Ms   float64 `json:"p99_ms"`
	P999Ms  float64 `json:"p999_ms"`
	MaxMs   float64 `json:"max_ms"`
	ElemsPS float64 `json:"elems_per_sec"`

	VisibleP50Ms float64 `json:"visible_p50_ms,omitempty"`
	VisibleP99Ms float64 `json:"visible_p99_ms,omitempty"`
}

// runRate drives one offered rate through the sink: an open-loop dispatcher
// releases arrivals on the fixed schedule into a buffered channel (never
// blocking on the system under test), workers drain it, and each sample's
// latency runs from the arrival's scheduled time to its completion.
func runRate(s sink, cfg config, rate float64) rateResult {
	gen := newStream(cfg)
	interval := time.Duration(float64(cfg.batch) / rate * float64(time.Second))
	if interval <= 0 {
		interval = time.Nanosecond
	}
	warmN := int(cfg.warmup.Seconds() * rate / float64(cfg.batch))
	measN := int(cfg.dur.Seconds() * rate / float64(cfg.batch))
	if measN < 1 {
		measN = 1
	}

	// Pre-generate every arrival so the dispatcher's only job is pacing.
	arrivals := make([]arrival, warmN+measN)
	for i := range arrivals {
		els := make([]pskyline.Element, cfg.batch)
		for j := range els {
			e := gen.Next()
			els[j] = pskyline.Element{Point: e.Point, Prob: e.P, TS: e.TS}
		}
		arrivals[i] = arrival{els: els, warm: i < warmN}
	}

	ch := make(chan *arrival, len(arrivals)) // dispatcher never blocks
	var (
		mu       sync.Mutex
		samples  []float64 // measured latencies, ns
		dropped  int
		firstEnd time.Time
		lastEnd  time.Time
	)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]float64, 0, measN/cfg.workers+1)
			localDropped := 0
			var lo, hi time.Time
			for a := range ch {
				err := s.push(a.els)
				end := time.Now()
				if a.warm {
					continue
				}
				if err != nil {
					localDropped++
					continue
				}
				local = append(local, float64(end.Sub(a.sched)))
				if lo.IsZero() || end.Before(lo) {
					lo = end
				}
				if end.After(hi) {
					hi = end
				}
			}
			mu.Lock()
			samples = append(samples, local...)
			dropped += localDropped
			if firstEnd.IsZero() || (!lo.IsZero() && lo.Before(firstEnd)) {
				firstEnd = lo
			}
			if hi.After(lastEnd) {
				lastEnd = hi
			}
			mu.Unlock()
		}()
	}

	// The open-loop pacer: arrival i is due at start + i*interval, released
	// then regardless of how far behind the workers are.
	start := time.Now()
	for i := range arrivals {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		arrivals[i].sched = due
		ch <- &arrivals[i]
	}
	close(ch)
	wg.Wait()

	res := rateResult{
		Label: cfg.label, Mode: cfg.mode, Tracking: !cfg.noLat,
		Dist: cfg.dims2dist(cfg.dist), Dims: cfg.dims, Window: cfg.window,
		Batch: cfg.batch, Workers: cfg.workers,
		Offered:   rate,
		Scheduled: measN,
		Completed: len(samples),
		Dropped:   dropped,
	}
	if cfg.target != "" {
		res.Mode = "http"
	}
	switch res.Mode {
	case "async":
		res.Async = cfg.async
	case "sharded":
		res.Shards = cfg.shards
	}
	if res.Completed+res.Dropped != res.Scheduled {
		// Every measured arrival must be accounted for — a bug in the
		// harness, not the system under test.
		panic(fmt.Sprintf("accounting: scheduled %d != completed %d + dropped %d",
			res.Scheduled, res.Completed, res.Dropped))
	}
	if len(samples) > 0 {
		sort.Float64s(samples)
		ms := func(ns float64) float64 { return ns / 1e6 }
		var sum float64
		for _, v := range samples {
			sum += v
		}
		res.MeanMs = ms(sum / float64(len(samples)))
		res.P50Ms = ms(quantile(samples, 0.50))
		res.P90Ms = ms(quantile(samples, 0.90))
		res.P99Ms = ms(quantile(samples, 0.99))
		res.P999Ms = ms(quantile(samples, 0.999))
		res.MaxMs = ms(samples[len(samples)-1])
		if span := lastEnd.Sub(firstEnd); span > 0 {
			res.Achieved = float64(res.Completed) / span.Seconds()
			res.ElemsPS = res.Achieved * float64(cfg.batch)
		}
	}
	if lm := s.visible(); lm != nil {
		res.VisibleP50Ms = lm.Visible.P50Ns / 1e6
		res.VisibleP99Ms = lm.Visible.P99Ns / 1e6
	}
	return res
}

// quantile reads q from sorted samples (exact, nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// dims2dist normalizes the distribution name for the result row.
func (c config) dims2dist(d string) string {
	if d == "" {
		return "inde"
	}
	return d
}

// newStream builds the element generator for one rate run. Every rate reuses
// the same seed, so sweeps compare latency under identical data.
func newStream(cfg config) streamgen.Stream {
	dist := streamgen.Independent
	switch cfg.dist {
	case "corr":
		dist = streamgen.Correlated
	case "anti":
		dist = streamgen.Anticorrelated
	case "clus":
		dist = streamgen.Clustered
	}
	return streamgen.New(cfg.dims, dist, streamgen.UniformProb{}, cfg.seed)
}

// sweep runs every offered rate against a fresh sink, prints the table, and
// appends the rows to the trajectory file.
func sweep(cfg config, out io.Writer) error {
	fmt.Fprintf(out, "pskyload: %s mode, dist=%s dims=%d window=%d batch=%d workers=%d tracking=%v\n",
		modeName(cfg), cfg.dist, cfg.dims, cfg.window, cfg.batch, cfg.workers, !cfg.noLat)
	fmt.Fprintf(out, "%-10s %-10s %-9s %-9s %-9s %-9s %-9s %-8s %-11s %s\n",
		"rate", "achieved", "p50ms", "p90ms", "p99ms", "p999ms", "maxms", "dropped", "vis_p50ms", "vis_p99ms")
	var rows []rateResult
	for _, rate := range cfg.rates {
		// A fresh sink per rate: no carry-over window state between rates.
		s, err := newSink(cfg)
		if err != nil {
			return err
		}
		r := runRate(s, cfg, rate)
		if err := s.close(); err != nil {
			return err
		}
		rows = append(rows, r)
		vis50, vis99 := "-", "-"
		if r.VisibleP50Ms > 0 || r.VisibleP99Ms > 0 {
			vis50 = fmt.Sprintf("%.3f", r.VisibleP50Ms)
			vis99 = fmt.Sprintf("%.3f", r.VisibleP99Ms)
		}
		fmt.Fprintf(out, "%-10.0f %-10.0f %-9.3f %-9.3f %-9.3f %-9.3f %-9.3f %-8d %-11s %s\n",
			r.Offered, r.ElemsPS, r.P50Ms, r.P90Ms, r.P99Ms, r.P999Ms, r.MaxMs,
			r.Dropped, vis50, vis99)
	}
	fmt.Fprintf(out, "(open-loop: latency measured from each arrival's scheduled time — stalls are charged to every arrival due during them)\n")
	if cfg.out != "" {
		if err := appendRows(cfg.out, cfg.label, rows); err != nil {
			return err
		}
		fmt.Fprintf(out, "pskyload: %d rows appended to %s\n", len(rows), cfg.out)
	}
	return nil
}

func modeName(cfg config) string {
	if cfg.target != "" {
		return "http(" + cfg.target + ")"
	}
	return cfg.mode
}

func newSink(cfg config) (sink, error) {
	if cfg.target != "" {
		return newHTTPSink(cfg), nil
	}
	return newInprocSink(cfg)
}

// benchFile is the JSON trajectory: one run per sweep invocation, appended.
type benchFile struct {
	Note string     `json:"note"`
	Runs []benchRun `json:"runs"`
}

type benchRun struct {
	Label string       `json:"label"`
	When  string       `json:"when"`
	Go    string       `json:"go"`
	Rows  []rateResult `json:"rows"`
}

const benchNote = "pskyload open-loop latency sweeps; quantiles exact over all samples; " +
	"latency measured from scheduled arrival (coordinated-omission aware); see DESIGN.md §15"

// appendRows merges the new rows into the trajectory file, creating it if
// absent.
func appendRows(path, label string, rows []rateResult) error {
	var bf benchFile
	if data, err := readFile(path); err == nil {
		if err := json.Unmarshal(data, &bf); err != nil {
			return fmt.Errorf("%s: existing file is not a pskyload trajectory: %v", path, err)
		}
	}
	bf.Note = benchNote
	bf.Runs = append(bf.Runs, benchRun{
		Label: label,
		When:  time.Now().UTC().Format(time.RFC3339),
		Go:    runtime.Version(),
		Rows:  rows,
	})
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return writeFile(path, append(data, '\n'))
}

// renderFile prints a trajectory file as one markdown table.
func renderFile(path string, out io.Writer) error {
	data, err := readFile(path)
	if err != nil {
		return err
	}
	var bf benchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	fmt.Fprintln(out, "| mode | tracking | offered (elems/s) | achieved | p50 (ms) | p99 (ms) | p999 (ms) | max (ms) | visible p50 (ms) | visible p99 (ms) | dropped |")
	fmt.Fprintln(out, "|------|----------|------------------:|---------:|---------:|---------:|----------:|---------:|-----------------:|-----------------:|--------:|")
	for _, run := range bf.Runs {
		for _, r := range run.Rows {
			track := "on"
			if !r.Tracking {
				track = "off"
			}
			vis50, vis99 := "—", "—"
			if r.VisibleP50Ms > 0 || r.VisibleP99Ms > 0 {
				vis50 = fmt.Sprintf("%.3f", r.VisibleP50Ms)
				vis99 = fmt.Sprintf("%.3f", r.VisibleP99Ms)
			}
			fmt.Fprintf(out, "| %s | %s | %.0f | %.0f | %.3f | %.3f | %.3f | %.3f | %s | %s | %d |\n",
				r.Mode, track, r.Offered, r.ElemsPS,
				r.P50Ms, r.P99Ms, r.P999Ms, r.MaxMs, vis50, vis99, r.Dropped)
		}
	}
	return nil
}

func readFile(path string) ([]byte, error)     { return os.ReadFile(path) }
func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// buildString reports the binary's build stamp for -version.
func buildString() string {
	s := "pskyload (" + runtime.Version() + ")"
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" && kv.Value != "" {
				rev := kv.Value
				if len(rev) > 12 {
					rev = rev[:12]
				}
				s += " revision " + rev
			}
		}
	}
	return s
}
