// Command pskyload is an open-loop, coordinated-omission-aware load generator
// for the probabilistic skyline monitor. It sweeps a list of offered rates
// against either an in-process monitor (-mode sync|async|sharded) or a
// running pskyline serve-mode host (-target URL), and reports a
// latency-versus-rate table.
//
// Open loop means arrivals are scheduled on a fixed clock — arrival i is due
// at start + i/rate — and the schedule never waits for the system under
// test. Each sample's latency is measured from its *scheduled* arrival time
// to its completion, not from the moment the request was actually sent, so
// when the system stalls, every arrival due during the stall observes the
// stall (the coordinated-omission correction; a closed-loop harness would
// pause the clock and silently under-report exactly the latencies that
// matter). Reported quantiles are exact: every sample is kept and sorted.
//
// In-process mode builds the monitor in the harness process and additionally
// scrapes the monitor's own ingest-to-visibility instrumentation (DESIGN.md
// §15), so the external view (scheduled arrival → push returned) and the
// internal view (admission → view publish) appear side by side.
// -no-latency disables that instrumentation — the A/B control measuring its
// overhead.
//
// Results append to a JSON trajectory file (-out, default off) so successive
// runs and variants accumulate; -render FILE prints such a file as a
// markdown table and exits.
//
// Usage:
//
//	pskyload -mode sync -rates 5000,10000,20000 -duration 2s -out BENCH_latency.json
//	pskyload -mode sharded -shards 4 -batch 64 -rates 50000,100000
//	pskyload -target http://localhost:8080 -stream hot -rates 1000,2000
//	pskyload -render BENCH_latency.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

type config struct {
	dims    int
	window  int
	qs      []float64
	dist    string
	seed    int64
	rates   []float64
	dur     time.Duration
	warmup  time.Duration
	batch   int
	workers int
	mode    string
	async   int
	shards  int
	noLat   bool
	target  string
	stream  string
	out     string
	label   string
}

func main() {
	var (
		dims    = flag.Int("dims", 2, "dimensionality of the generated points")
		window  = flag.Int("window", 10000, "count-based sliding window size")
		qList   = flag.String("q", "0.3", "comma-separated probability thresholds")
		dist    = flag.String("dist", "inde", "spatial distribution: inde, corr, anti, clus")
		seed    = flag.Int64("seed", 1, "random seed for the generated stream")
		rates   = flag.String("rates", "2000,5000,10000", "comma-separated offered rates to sweep, in elements/sec")
		dur     = flag.Duration("duration", 2*time.Second, "measured time per rate")
		warmup  = flag.Duration("warmup", 500*time.Millisecond, "per-rate warmup at the offered rate; samples discarded")
		batch   = flag.Int("batch", 1, "elements per request (arrival rate = rate/batch)")
		workers = flag.Int("workers", 4, "concurrent senders draining the arrival schedule")
		mode    = flag.String("mode", "sync", "in-process monitor variant: sync, async or sharded (ignored with -target)")
		async   = flag.Int("async", 4096, "async queue capacity for -mode async")
		shards  = flag.Int("shards", 4, "shard count for -mode sharded")
		noLat   = flag.Bool("no-latency", false, "disable the monitor's own latency instrumentation (A/B overhead control; in-process only)")
		target  = flag.String("target", "", "load a running pskyline host at this base URL instead of an in-process monitor")
		stream  = flag.String("stream", "bench", "stream name to push to on -target hosts")
		out     = flag.String("out", "", "append results to this JSON trajectory file")
		label   = flag.String("label", "local", "label naming this run in the trajectory file")
		render  = flag.String("render", "", "render a JSON trajectory file as a markdown table and exit")
		version = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildString())
		return
	}
	if *render != "" {
		if err := renderFile(*render, os.Stdout); err != nil {
			fatal("%v", err)
		}
		return
	}

	cfg := config{
		dims: *dims, window: *window, dist: *dist, seed: *seed,
		dur: *dur, warmup: *warmup, batch: *batch, workers: *workers,
		mode: *mode, async: *async, shards: *shards, noLat: *noLat,
		target: *target, stream: *stream, out: *out, label: *label,
	}
	for _, s := range strings.Split(*qList, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal("bad threshold %q: %v", s, err)
		}
		cfg.qs = append(cfg.qs, q)
	}
	for _, s := range strings.Split(*rates, ",") {
		r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil || r <= 0 {
			fatal("bad rate %q", s)
		}
		cfg.rates = append(cfg.rates, r)
	}
	if err := sweep(cfg, os.Stdout); err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pskyload: "+format+"\n", args...)
	os.Exit(1)
}
