// Command datagen emits synthetic uncertain data streams as CSV, one
// element per line: d coordinates, the occurrence probability, and a
// timestamp. The output feeds cmd/pskyline.
//
// Usage:
//
//	datagen -dist anti -dims 3 -n 100000 > anti3d.csv
//	datagen -dist stock -n 100000 | pskyline -dims 2 -window 10000 -q 0.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pskyline/internal/streamgen"
)

func main() {
	var (
		dist = flag.String("dist", "inde", "spatial distribution: inde, corr, anti, clus, stock")
		dims = flag.Int("dims", 2, "dimensionality (ignored for stock, which is 2-d)")
		n    = flag.Int("n", 100000, "number of elements")
		pm   = flag.String("prob", "uniform", "probability model: uniform, normal, const")
		pmu  = flag.Float64("pmu", 0.5, "mean for -prob normal")
		pc   = flag.Float64("p", 0.8, "probability for -prob const")
		seed = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var model streamgen.ProbModel
	switch *pm {
	case "uniform":
		model = streamgen.UniformProb{}
	case "normal":
		model = streamgen.NormalProb{Mu: *pmu, Sd: 0.3}
	case "const":
		model = streamgen.ConstProb{P: *pc}
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown probability model %q\n", *pm)
		os.Exit(2)
	}

	var src streamgen.Stream
	switch *dist {
	case "inde":
		src = streamgen.New(*dims, streamgen.Independent, model, *seed)
	case "corr":
		src = streamgen.New(*dims, streamgen.Correlated, model, *seed)
	case "anti":
		src = streamgen.New(*dims, streamgen.Anticorrelated, model, *seed)
	case "clus":
		src = streamgen.New(*dims, streamgen.Clustered, model, *seed)
	case "stock":
		src = streamgen.NewStock(model, *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	for i := 0; i < *n; i++ {
		el := src.Next()
		for _, v := range el.Point {
			fmt.Fprintf(w, "%g,", v)
		}
		fmt.Fprintf(w, "%g,%d\n", el.P, el.TS)
	}
}
