package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// awaitStderr polls a run goroutine's stderr for a marker line and returns
// the first whitespace-delimited token after it.
func awaitStderr(t *testing.T, errw *syncBuf, marker string) string {
	t.Helper()
	for i := 0; i < 1000; i++ {
		if s := errw.String(); strings.Contains(s, marker) {
			rest := s[strings.Index(s, marker)+len(marker):]
			return strings.Fields(rest)[0]
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("never saw %q on stderr: %s", marker, errw.String())
	return ""
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if into != nil {
		if err := json.Unmarshal(body, into); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
		}
	}
	return resp.StatusCode
}

// TestRunReplicaMode drives the full CLI topology end to end: a durable
// primary with -replicate-listen, a -replica-of follower serving HTTP,
// read-only enforcement, primary death, promotion via the -promote client
// path, and writability of the promoted node.
func TestRunReplicaMode(t *testing.T) {
	lines := genCSV(21, 300)

	// Primary: durable, replicating, held up by -http until stopped.
	stopP := make(chan struct{})
	pCfg := config{
		dims: 2, window: 100, thresholds: []float64{0.3},
		batch: 1, summary: true, httpAddr: "127.0.0.1:0",
		walDir: t.TempDir(), walFsync: "never",
		replListen: "127.0.0.1:0", stop: stopP,
	}
	var pOut bytes.Buffer
	var pErr syncBuf
	pDone := make(chan error, 1)
	go func() {
		pDone <- run(pCfg, strings.NewReader(strings.Join(lines, "\n")+"\n"), &pOut, &pErr)
	}()
	replAddr := awaitStderr(t, &pErr, "pskyline: replicating on ")
	pHTTP := awaitStderr(t, &pErr, "serving on ")

	// Replica: follows the primary, serves its own HTTP endpoint.
	stopR := make(chan struct{})
	rCfg := config{
		dims: 2, window: 100, thresholds: []float64{0.3},
		batch: 1, httpAddr: "127.0.0.1:0",
		walDir: t.TempDir(), walFsync: "never",
		replicaOf: replAddr, stop: stopR,
	}
	var rOut bytes.Buffer
	var rErr syncBuf
	rDone := make(chan error, 1)
	go func() {
		rDone <- run(rCfg, strings.NewReader(""), &rOut, &rErr)
	}()
	rHTTP := awaitStderr(t, &rErr, "serving on ")

	// The replica must report its role and converge on the primary's
	// position.
	var health map[string]any
	deadline := time.Now().Add(10 * time.Second)
	for {
		if getJSON(t, rHTTP+"/healthz", &health) == http.StatusOK &&
			health["role"] == "replica" && health["processed"] == float64(len(lines)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never caught up: %v", health)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, ok := health["replication"]; !ok {
		t.Fatalf("replica /healthz missing replication block: %v", health)
	}

	// Replica and primary serve the identical skyline.
	var pSky, rSky json.RawMessage
	getJSON(t, pHTTP+"/skyline", &pSky)
	getJSON(t, rHTTP+"/skyline", &rSky)
	if !bytes.Equal(pSky, rSky) {
		t.Fatalf("skyline diverged:\nprimary %s\nreplica %s", pSky, rSky)
	}

	// The primary's /healthz reports its role and follower lag; its
	// /metrics carries the per-follower gauges.
	var pHealth map[string]any
	getJSON(t, pHTTP+"/healthz", &pHealth)
	if pHealth["role"] != "primary" || pHealth["replication"] == nil {
		t.Fatalf("primary /healthz = %v", pHealth)
	}
	resp, err := http.Get(pHTTP + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "pskyline_repl_follower_lag_seq{") {
		t.Fatalf("primary /metrics missing follower lag series")
	}

	// Writes to a replica are refused.
	resp, err = http.Post(rHTTP+"/push", "application/json", strings.NewReader(`{"point":[0.5,0.5],"prob":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("POST /push on replica: status %d, want 403", resp.StatusCode)
	}

	// Primary dies; promote the replica through the -promote client path.
	close(stopP)
	if err := <-pDone; err != nil {
		t.Fatalf("primary run: %v", err)
	}
	var promoteOut bytes.Buffer
	if err := runPromote(rHTTP, &promoteOut); err != nil {
		t.Fatalf("promote: %v", err)
	}
	if !strings.Contains(promoteOut.String(), "role=primary epoch=1") {
		t.Fatalf("promote output: %q", promoteOut.String())
	}

	// The promoted node is a writable primary now.
	getJSON(t, rHTTP+"/healthz", &health)
	if health["role"] != "primary" {
		t.Fatalf("role after promotion = %v", health["role"])
	}
	resp, err = http.Post(rHTTP+"/push?drain=1", "application/json", strings.NewReader(`{"point":[0.5,0.5],"prob":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /push after promotion: status %d: %s", resp.StatusCode, body)
	}
	var sky struct {
		Processed float64 `json:"processed"`
	}
	getJSON(t, rHTTP+"/skyline", &sky)
	if sky.Processed != float64(len(lines)+1) {
		t.Fatalf("promoted node processed %v, want %d", sky.Processed, len(lines)+1)
	}

	// Clean shutdown of the promoted node installs a final checkpoint.
	close(stopR)
	if err := <-rDone; err != nil {
		t.Fatalf("replica run: %v", err)
	}
	if !strings.Contains(rErr.String(), "checkpoint installed") {
		t.Fatalf("promoted node did not checkpoint at exit: %s", rErr.String())
	}
}

// TestRunReplicaFlagValidation covers the replica-mode flag contract.
func TestRunReplicaFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  config
		want string
	}{
		{"no wal", config{dims: 2, window: 10, thresholds: []float64{0.3}, replicaOf: "127.0.0.1:1", httpAddr: ":0"}, "-replica-of requires -wal"},
		{"no http", config{dims: 2, window: 10, thresholds: []float64{0.3}, replicaOf: "127.0.0.1:1", walDir: t.TempDir()}, "-replica-of requires -http"},
		{"both roles", config{dims: 2, window: 10, thresholds: []float64{0.3}, replicaOf: "127.0.0.1:1", walDir: t.TempDir(), httpAddr: ":0", replListen: ":0"}, "mutually exclusive"},
		{"sharded replica", config{dims: 2, window: 10, thresholds: []float64{0.3}, replicaOf: "127.0.0.1:1", walDir: t.TempDir(), httpAddr: ":0", shards: 4}, "-shards must be 1"},
		{"primary no wal", config{dims: 2, window: 10, thresholds: []float64{0.3}, batch: 1, replListen: ":0"}, "-replicate-listen requires -wal"},
		{"primary sharded", config{dims: 2, window: 10, thresholds: []float64{0.3}, batch: 1, replListen: ":0", walDir: t.TempDir(), shards: 2}, "-shards must be 1"},
		{"primary streams", config{dims: 2, window: 10, thresholds: []float64{0.3}, batch: 1, replListen: ":0", streams: "a:dims=2,window=10,q=0.3", httpAddr: ":0"}, "not -streams"},
	}
	for _, tc := range cases {
		err := run(tc.cfg, strings.NewReader(""), io.Discard, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}
