// Command pskyline maintains a continuous probabilistic skyline over a CSV
// stream (as produced by cmd/datagen): each input line holds d coordinates,
// an occurrence probability, and optionally a timestamp.
//
// By default it prints enter/leave events for the q_1-skyline as the window
// slides; -snapshot N prints a skyline snapshot every N elements instead,
// and -summary prints only the final statistics.
//
// Usage:
//
//	datagen -dist anti -dims 3 -n 200000 | pskyline -dims 3 -window 100000 -q 0.3 -summary
//	pskyline -dims 2 -window 1000 -q 0.5,0.3 -snapshot 500 < stream.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pskyline"
)

func main() {
	var (
		dims     = flag.Int("dims", 2, "dimensionality of the input points")
		window   = flag.Int("window", 100000, "count-based sliding window size")
		period   = flag.Int64("period", 0, "time-based window period (overrides -window; input must carry timestamps)")
		qList    = flag.String("q", "0.3", "comma-separated probability thresholds")
		snapshot = flag.Int("snapshot", 0, "print a skyline snapshot every N elements instead of events")
		summary  = flag.Bool("summary", false, "print only final statistics")
		file     = flag.String("f", "", "input file (default stdin)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file: loaded at start if present, written at exit")
	)
	flag.Parse()

	var thresholds []float64
	for _, s := range strings.Split(*qList, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal("bad threshold %q: %v", s, err)
		}
		thresholds = append(thresholds, q)
	}

	opt := pskyline.Options{Dims: *dims, Thresholds: thresholds}
	if *period > 0 {
		opt.Period = *period
	} else {
		opt.Window = *window
	}
	quiet := *summary || *snapshot > 0
	if !quiet {
		opt.OnEnter = func(p pskyline.SkyPoint) {
			fmt.Printf("+ seq=%d pt=%v p=%.3f\n", p.Seq, p.Point, p.Prob)
		}
		opt.OnLeave = func(p pskyline.SkyPoint) {
			fmt.Printf("- seq=%d pt=%v\n", p.Seq, p.Point)
		}
	}
	var m *pskyline.Monitor
	var err error
	if *ckpt != "" {
		if f, ferr := os.Open(*ckpt); ferr == nil {
			m, err = pskyline.RestoreMonitor(f, pskyline.RestoreOptions{
				OnEnter: opt.OnEnter, OnLeave: opt.OnLeave,
			})
			f.Close()
			if err != nil {
				fatal("restore %s: %v", *ckpt, err)
			}
			fmt.Fprintf(os.Stderr, "pskyline: resumed from %s (%d elements seen)\n",
				*ckpt, m.Stats().Processed)
		}
	}
	if m == nil {
		m, err = pskyline.NewMonitor(opt)
		if err != nil {
			fatal("%v", err)
		}
	}

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	start := time.Now()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		el, err := parseLine(line, *dims)
		if err != nil {
			fatal("line %d: %v", count+1, err)
		}
		if _, err := m.Push(el); err != nil {
			fatal("line %d: %v", count+1, err)
		}
		count++
		if *snapshot > 0 && count%*snapshot == 0 {
			sky := m.Skyline()
			fmt.Printf("@%d skyline (%d points):\n", count, len(sky))
			for _, p := range sky {
				fmt.Printf("  seq=%d pt=%v psky=%.4f\n", p.Seq, p.Point, p.Psky)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal("read: %v", err)
	}
	elapsed := time.Since(start)
	if *ckpt != "" {
		f, err := os.Create(*ckpt)
		if err != nil {
			fatal("checkpoint: %v", err)
		}
		if err := m.Snapshot(f); err != nil {
			fatal("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			fatal("checkpoint: %v", err)
		}
		fmt.Fprintf(os.Stderr, "pskyline: checkpoint written to %s\n", *ckpt)
	}
	st := m.Stats()
	fmt.Printf("processed %d elements in %v (%.0f elems/sec)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	fmt.Printf("candidates: now %d, max %d; skyline: now %d, max %d\n",
		st.Candidates, st.MaxCandidates, st.Skyline, st.MaxSkyline)
}

// parseLine parses "x1,...,xd,prob[,ts]".
func parseLine(line string, dims int) (pskyline.Element, error) {
	parts := strings.Split(line, ",")
	if len(parts) != dims+1 && len(parts) != dims+2 {
		return pskyline.Element{}, fmt.Errorf("want %d or %d fields, got %d", dims+1, dims+2, len(parts))
	}
	el := pskyline.Element{Point: make([]float64, dims)}
	for i := 0; i < dims; i++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return el, fmt.Errorf("coordinate %d: %v", i, err)
		}
		el.Point[i] = v
	}
	p, err := strconv.ParseFloat(strings.TrimSpace(parts[dims]), 64)
	if err != nil {
		return el, fmt.Errorf("probability: %v", err)
	}
	el.Prob = p
	if len(parts) == dims+2 {
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[dims+1]), 10, 64)
		if err != nil {
			return el, fmt.Errorf("timestamp: %v", err)
		}
		el.TS = ts
	}
	return el, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pskyline: "+format+"\n", args...)
	os.Exit(1)
}
