// Command pskyline maintains a continuous probabilistic skyline over a CSV
// stream (as produced by cmd/datagen): each input line holds d coordinates,
// an occurrence probability, and optionally a timestamp.
//
// By default it prints enter/leave events for the q_1-skyline as the window
// slides; -snapshot N prints a skyline snapshot every N elements instead,
// and -summary prints only the final statistics. Snapshots are served from
// the monitor's published read view — the same lock-free path a concurrent
// query workload would use while the stream keeps flowing.
//
// -batch B ingests the stream through PushBatch in batches of B elements,
// and -async C routes ingestion through a bounded async queue of capacity C
// (drained before every snapshot print and at exit); both amortize view
// publication on write-heavy streams.
//
// -http ADDR serves the monitor's observability endpoints while the stream
// flows: /metrics (Prometheus), /healthz, /buildinfo, /debug/skyline (current
// skyline + recent transitions), /debug/flight (flight-recorder span dump),
// /debug/vars (JSON metrics) and /debug/pprof. With -http the process stays
// up after the input ends, still serving, until SIGINT/SIGTERM. -summary
// additionally prints the work counters, per-stage latency quantiles, and the
// ingest-to-visibility latency block at exit.
//
// Ingest-to-visibility latency tracking and the flight recorder are on by
// default (allocation-free; see DESIGN.md §15); -no-latency turns them off as
// the instrumentation-off control, -slow-threshold tunes the slow-span latch,
// and -latency-epoch the recent-quantile window rotation. -version prints the
// build stamp (VCS revision, Go toolchain) and exits.
//
// -wal DIR makes the session crash-recoverable: every element is written to a
// segmented write-ahead log in DIR before it is applied, checkpoints are
// installed automatically (and once more at clean exit), and a restart with
// the same -wal DIR recovers the newest checkpoint and replays the committed
// log tail before reading new input. -wal-fsync picks the commit durability
// policy (always|interval|never). With -http, the server comes up before
// recovery starts and answers 503 {"status":"recovering"} until replay
// completes, so readiness probes hold traffic during long replays. -wal and
// -checkpoint are mutually exclusive (the WAL directory subsumes the
// single-file checkpoint).
//
// -shards N partitions the window across N single-writer engines behind one
// exact merged query surface (see DESIGN.md §13); -router picks the
// partitioning scheme. Sharding composes with -batch, -async, -wal (each
// shard gets its own WAL namespace under DIR) and -http, but not with
// -checkpoint or the default event mode (use -summary or -snapshot).
//
// -streams runs the process as a multi-tenant host instead: each
// ";"-separated spec (name:dims=..,window=..,q=..[,shards=..][,wal=on],...)
// opens an independently configured named stream, ingested and queried over
// HTTP (POST /streams/{name}/push, GET /streams/{name}/skyline) with shared
// /metrics and /healthz. Requires -http; stdin ingestion is disabled; -wal
// DIR roots every durable stream's namespace at DIR/streams/<name>.
//
// Usage:
//
//	datagen -dist anti -dims 3 -n 200000 | pskyline -dims 3 -window 100000 -q 0.3 -summary
//	pskyline -dims 2 -window 1000 -q 0.5,0.3 -snapshot 500 < stream.csv
//	pskyline -dims 3 -window 100000 -q 0.3 -batch 512 -async 4096 -summary < stream.csv
//	datagen -dims 2 -n 1000000 | pskyline -dims 2 -window 10000 -q 0.3 -http :8080 -summary
//	datagen -dims 3 -n 500000 | pskyline -dims 3 -window 50000 -q 0.3 -wal ./wal -wal-fsync interval -summary
//	datagen -dims 3 -n 500000 | pskyline -dims 3 -window 50000 -q 0.3 -shards 4 -batch 256 -summary
//	pskyline -streams "hot:dims=2,window=1000,q=0.5;cold:dims=3,window=5000,q=0.3,shards=4,wal=on" -wal ./data -http :8080
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pskyline"
	"pskyline/internal/repl"
)

// config collects the parsed command line so tests can drive run directly.
type config struct {
	dims        int
	window      int
	period      int64
	thresholds  []float64
	snapshot    int
	summary     bool
	file        string
	ckpt        string
	batch       int
	async       int
	httpAddr    string
	asyncPolicy string
	shards      int
	router      string
	streams     string
	// latency instrumentation (-no-latency family)
	noLatency     bool
	slowThreshold time.Duration
	latencyEpoch  time.Duration
	// durability (-wal family)
	walDir       string
	walFsync     string
	walPolicy    string
	walSegmentMB int
	walCkptEvery int
	walFault     string
	walFaultSeed int64
	// replication (-replicate-listen / -replica-of / -promote)
	replListen    string
	replicaOf     string
	promote       string
	replSemiK     int
	replAckWait   time.Duration
	replFault     string
	replFaultSeed int64
	// stop overrides the serve-mode shutdown trigger (nil = OS signals);
	// tests close it to unblock run without sending a signal.
	stop <-chan struct{}
}

func main() {
	var (
		dims     = flag.Int("dims", 2, "dimensionality of the input points")
		window   = flag.Int("window", 100000, "count-based sliding window size")
		period   = flag.Int64("period", 0, "time-based window period (overrides -window; input must carry timestamps)")
		qList    = flag.String("q", "0.3", "comma-separated probability thresholds")
		snapshot = flag.Int("snapshot", 0, "print a skyline snapshot every N elements instead of events")
		summary  = flag.Bool("summary", false, "print only final statistics")
		file     = flag.String("f", "", "input file (default stdin)")
		ckpt     = flag.String("checkpoint", "", "checkpoint file: loaded at start if present, written at exit")
		batch    = flag.Int("batch", 1, "ingest the stream in batches of this many elements")
		async    = flag.Int("async", 0, "route ingestion through a bounded async queue of this capacity (0 = synchronous)")
		asyncPol = flag.String("async-policy", "block", "full async queue response: block (backpressure), drop-newest or drop-oldest")
		httpAddr = flag.String("http", "", "serve /metrics, /healthz, /debug/skyline and /debug/pprof on this address (e.g. :8080); the process then stays up after EOF until SIGINT/SIGTERM")
		shards   = flag.Int("shards", 1, "partition the window across this many single-writer engines with an exact merged query surface")
		router   = flag.String("router", "grid", "shard router: grid (spatial cells) or band (probability bands)")
		streams  = flag.String("streams", "", "multi-tenant mode: ';'-separated stream specs name:dims=..,window=..,q=..[,shards=..][,wal=on]; requires -http, disables stdin ingestion")
		walDir   = flag.String("wal", "", "durability directory: write-ahead log + checkpoints; recovers existing state at start")
		walFsync = flag.String("wal-fsync", "interval", "WAL commit durability: always, interval or never")
		walPol   = flag.String("wal-policy", "failstop", "durability failure response: failstop, retry or shed")
		walSegMB = flag.Int("wal-segment-mb", 0, "WAL segment rotation threshold in MiB (0 = default 64)")
		walEvery = flag.Int("wal-checkpoint-every", 0, "install a checkpoint every N ingested elements (0 = default, negative = only at exit)")
		walFault = flag.String("wal-fault", "", "chaos testing: seeded fault schedule for the durability filesystem (e.g. \"sync:after=40:times=3;write:partial=7\")")
		walFSeed = flag.Int64("wal-fault-seed", 0, "seed for probabilistic -wal-fault rules (0 = 1)")
		noLat    = flag.Bool("no-latency", false, "disable ingest-to-visibility latency tracking and the flight recorder (instrumentation-off control)")
		slowThr  = flag.Duration("slow-threshold", 0, "latch writes at or above this admission-to-visibility latency into the flight recorder's slow ring (0 = default 5ms)")
		latEpoch = flag.Duration("latency-epoch", 0, "rotation interval of the windowed latency histograms; recent quantiles cover 6 epochs (0 = default 10s)")
		replLis  = flag.String("replicate-listen", "", "primary mode: stream the WAL to read-only replicas on this address (requires -wal, single engine)")
		replOf   = flag.String("replica-of", "", "replica mode: follow the primary replicating on this address (requires -wal and -http; stdin is not read)")
		promote  = flag.String("promote", "", "promote the replica serving HTTP on this address to a writable primary, then exit")
		replSemK = flag.Int("repl-semisync-k", 0, "semi-sync replication: block each push until this many followers ack it, degrading to async when the quorum cannot keep up (0 = async)")
		replAckW = flag.Duration("repl-ack-wait", 0, "semi-sync ack deadline before a push stops waiting and the stream degrades (0 = default 1s)")
		replFlt  = flag.String("repl-fault", "", "chaos testing: seeded fault schedule for replication connections (e.g. \"write:p=0.1:err=reset;read:delay=20ms\")")
		replFSed = flag.Int64("repl-fault-seed", 0, "seed for probabilistic -repl-fault rules (0 = 1)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(build.String())
		return
	}

	var thresholds []float64
	for _, s := range strings.Split(*qList, ",") {
		q, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			fatal("bad threshold %q: %v", s, err)
		}
		thresholds = append(thresholds, q)
	}

	cfg := config{
		dims: *dims, window: *window, period: *period, thresholds: thresholds,
		snapshot: *snapshot, summary: *summary, file: *file, ckpt: *ckpt,
		batch: *batch, async: *async, asyncPolicy: *asyncPol, httpAddr: *httpAddr,
		shards: *shards, router: *router, streams: *streams,
		noLatency: *noLat, slowThreshold: *slowThr, latencyEpoch: *latEpoch,
		walDir: *walDir, walFsync: *walFsync, walPolicy: *walPol,
		walSegmentMB: *walSegMB, walCkptEvery: *walEvery,
		walFault: *walFault, walFaultSeed: *walFSeed,
		replListen: *replLis, replicaOf: *replOf, promote: *promote,
		replSemiK: *replSemK, replAckWait: *replAckW,
		replFault: *replFlt, replFaultSeed: *replFSed,
	}
	if err := run(cfg, os.Stdin, os.Stdout, os.Stderr); err != nil {
		fatal("%v", err)
	}
}

// run executes one streaming session: restore-or-create the monitor, feed
// the input through it (optionally batched and/or async), serve snapshot
// prints from the published view, and checkpoint at exit.
func run(cfg config, stdin io.Reader, out, errw io.Writer) error {
	if cfg.promote != "" {
		return runPromote(cfg.promote, out)
	}
	if cfg.replSemiK < 0 {
		return fmt.Errorf("-repl-semisync-k %d < 0", cfg.replSemiK)
	}
	if cfg.replSemiK > 0 && cfg.replListen == "" {
		return fmt.Errorf("-repl-semisync-k requires -replicate-listen: only a replicating primary waits on acks")
	}
	if cfg.replAckWait != 0 && cfg.replSemiK == 0 {
		return fmt.Errorf("-repl-ack-wait requires -repl-semisync-k")
	}
	if cfg.replFault != "" && cfg.replListen == "" && cfg.replicaOf == "" {
		return fmt.Errorf("-repl-fault requires -replicate-listen or -replica-of: the schedule wraps replication connections")
	}
	if cfg.replicaOf != "" {
		return runReplica(cfg, errw)
	}
	if cfg.streams != "" {
		if cfg.replListen != "" {
			return fmt.Errorf("-replicate-listen replicates a single stream, not -streams")
		}
		return runStreams(cfg, errw)
	}
	if cfg.replListen != "" {
		if cfg.walDir == "" {
			return fmt.Errorf("-replicate-listen requires -wal: the WAL is the replication log")
		}
		if cfg.shards > 1 {
			return fmt.Errorf("-replicate-listen replicates a single-engine stream: -shards must be 1")
		}
	}
	if cfg.batch < 1 {
		return fmt.Errorf("batch size %d < 1", cfg.batch)
	}
	if cfg.walDir != "" && cfg.ckpt != "" {
		return fmt.Errorf("-wal and -checkpoint are mutually exclusive: the WAL directory subsumes the single-file checkpoint")
	}
	if cfg.shards == 0 {
		cfg.shards = 1
	}
	if cfg.shards < 1 {
		return fmt.Errorf("shard count %d < 1", cfg.shards)
	}
	if cfg.shards > 1 && cfg.ckpt != "" {
		return fmt.Errorf("-shards and -checkpoint are mutually exclusive: sharded state checkpoints through -wal")
	}
	opt := pskyline.Options{Dims: cfg.dims, Thresholds: cfg.thresholds, AsyncQueue: cfg.async}
	opt.Latency = pskyline.LatencyOptions{
		Disable:       cfg.noLatency,
		Epoch:         cfg.latencyEpoch,
		SlowThreshold: cfg.slowThreshold,
	}
	pol, perr := pskyline.ParseOverloadPolicy(cfg.asyncPolicy)
	if perr != nil {
		return perr
	}
	opt.AsyncPolicy = pol
	if cfg.period > 0 {
		opt.Period = cfg.period
	} else {
		opt.Window = cfg.window
	}
	if cfg.walDir != "" {
		opt.Durability = pskyline.Durability{
			Dir:             cfg.walDir,
			Fsync:           cfg.walFsync,
			Policy:          cfg.walPolicy,
			SegmentBytes:    int64(cfg.walSegmentMB) << 20,
			CheckpointEvery: cfg.walCkptEvery,
			InjectFaults:    cfg.walFault,
			FaultSeed:       cfg.walFaultSeed,
		}
	}
	quiet := cfg.summary || cfg.snapshot > 0
	if !quiet {
		if cfg.shards > 1 {
			return fmt.Errorf("-shards needs -summary or -snapshot: enter/leave events are per-shard, not global")
		}
		opt.OnEnter = func(p pskyline.SkyPoint) {
			fmt.Fprintf(out, "+ seq=%d pt=%v p=%.3f\n", p.Seq, p.Point, p.Prob)
		}
		opt.OnLeave = func(p pskyline.SkyPoint) {
			fmt.Fprintf(out, "- seq=%d pt=%v\n", p.Seq, p.Point)
		}
	}
	// With durability, the HTTP server comes up before recovery so probes see
	// 503 "recovering" during replay instead of connection refused — with the
	// live replay progress in the body.
	var (
		srv *http.Server
		h   *monitorHandle
		rs  *replState
		err error
	)
	if cfg.replListen != "" {
		rs = &replState{}
	}
	if cfg.httpAddr != "" {
		h = newMonitorHandle(nil)
		if cfg.walDir != "" {
			prog := &pskyline.RecoveryProgress{}
			h.progress = prog
			opt.Durability.Progress = prog
		}
		srv, err = startServer(cfg.httpAddr, newServeMux(h, rs), errw)
		if err != nil {
			return err
		}
		defer srv.Close()
	}

	// m is the stream operator: a single *Monitor, or a *ShardedMonitor when
	// -shards > 1. mon is the concrete monitor in single-engine mode, for the
	// monitor-only surfaces (-checkpoint snapshots, the -summary metric
	// mirror).
	var (
		m   pskyline.Operator
		mon *pskyline.Monitor
	)
	if cfg.shards == 1 && cfg.ckpt != "" {
		if f, ferr := os.Open(cfg.ckpt); ferr == nil {
			mon, err = pskyline.RestoreMonitor(f, pskyline.RestoreOptions{
				OnEnter: opt.OnEnter, OnLeave: opt.OnLeave,
				AsyncQueue: cfg.async,
			})
			f.Close()
			if err != nil {
				return fmt.Errorf("restore %s: %v", cfg.ckpt, err)
			}
			fmt.Fprintf(errw, "pskyline: resumed from %s (%d elements seen)\n",
				cfg.ckpt, mon.Stats().Processed)
			m = mon
		}
	}
	if m == nil && cfg.shards > 1 {
		rt, rerr := parseRouter(cfg.router)
		if rerr != nil {
			return rerr
		}
		var sm *pskyline.ShardedMonitor
		sm, err = pskyline.NewSharded(pskyline.ShardedOptions{
			Options: opt, Shards: cfg.shards, Router: rt,
		})
		if err != nil {
			return err
		}
		m = sm
	}
	if m == nil {
		mon, err = pskyline.NewMonitor(opt)
		if err != nil {
			return err
		}
		m = mon
	}
	if rec := m.Recovery(); rec.Recovered {
		fmt.Fprintf(errw, "pskyline: recovered from %s: checkpoint seq %d + %d replayed records (%d torn bytes truncated, %d segments dropped) in %v\n",
			cfg.walDir, rec.CheckpointSeq, rec.Replayed,
			rec.TruncatedBytes, rec.SegmentsDropped,
			rec.Duration.Round(time.Millisecond))
	}
	defer m.Close()
	if h != nil {
		h.set(m)
	}
	if cfg.replListen != "" {
		if mon == nil {
			return fmt.Errorf("-replicate-listen requires a single-engine durable monitor")
		}
		epoch, eerr := repl.LoadEpoch(cfg.walDir)
		if eerr != nil {
			return eerr
		}
		sopt := repl.ServerOptions{Epoch: epoch, SemiSyncK: cfg.replSemiK, AckWait: cfg.replAckWait}
		sopt.Fault, err = parseReplFault(cfg)
		if err != nil {
			return err
		}
		rsrv, rerr := repl.NewServer(mon, cfg.replListen, sopt)
		if rerr != nil {
			return rerr
		}
		defer rsrv.Close()
		if rs != nil {
			rs.setServer(rsrv)
		}
		if cfg.replSemiK > 0 {
			fmt.Fprintf(errw, "pskyline: replicating on %s (epoch %d, semi-sync k=%d)\n", rsrv.Addr(), epoch, cfg.replSemiK)
		} else {
			fmt.Fprintf(errw, "pskyline: replicating on %s (epoch %d)\n", rsrv.Addr(), epoch)
		}
	}

	in := stdin
	if cfg.file != "" {
		f, err := os.Open(cfg.file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	count := 0
	start := time.Now()
	batch := make([]pskyline.Element, 0, cfg.batch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := m.PushBatch(batch); err != nil {
			return err
		}
		batch = batch[:0]
		return nil
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		el, err := parseLine(line, cfg.dims)
		if err != nil {
			return fmt.Errorf("line %d: %v", count+1, err)
		}
		batch = append(batch, el)
		if len(batch) == cfg.batch {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %v", count+1, err)
			}
		}
		count++
		if cfg.snapshot > 0 && count%cfg.snapshot == 0 {
			if err := flush(); err != nil {
				return fmt.Errorf("line %d: %v", count, err)
			}
			m.Drain() // with -async: make everything ingested so far visible
			v := m.View()
			sky := v.Skyline()
			fmt.Fprintf(out, "@%d skyline (%d points):\n", v.Processed(), len(sky))
			for _, p := range sky {
				fmt.Fprintf(out, "  seq=%d pt=%v psky=%.4f\n", p.Seq, p.Point, p.Psky)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("read: %v", err)
	}
	if err := flush(); err != nil {
		return err
	}
	m.Drain()
	elapsed := time.Since(start)
	if cfg.walDir != "" {
		if err := m.Checkpoint(); err != nil {
			return fmt.Errorf("checkpoint: %v", err)
		}
		fmt.Fprintf(errw, "pskyline: checkpoint installed in %s at seq %d\n",
			cfg.walDir, m.Stats().Processed)
	}
	if cfg.ckpt != "" && mon != nil {
		f, err := os.Create(cfg.ckpt)
		if err != nil {
			return fmt.Errorf("checkpoint: %v", err)
		}
		if err := mon.Snapshot(f); err != nil {
			return fmt.Errorf("checkpoint: %v", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("checkpoint: %v", err)
		}
		fmt.Fprintf(errw, "pskyline: checkpoint written to %s\n", cfg.ckpt)
	}
	st := m.Stats()
	fmt.Fprintf(out, "processed %d elements in %v (%.0f elems/sec)\n",
		count, elapsed.Round(time.Millisecond), float64(count)/elapsed.Seconds())
	fmt.Fprintf(out, "candidates: now %d, max %d; skyline: now %d, max %d\n",
		st.Candidates, st.MaxCandidates, st.Skyline, st.MaxSkyline)
	if cfg.summary {
		if mon != nil {
			met := mon.Metrics()
			printWorkSummary(out, met)
			printLatencySummary(out, met.Latency, mon.Flight())
		} else if sm, ok := m.(*pskyline.ShardedMonitor); ok {
			printShardSummary(out, sm)
		}
		if rs != nil {
			printReplSummary(out, rs)
		}
	}
	if srv != nil {
		fmt.Fprintf(errw, "pskyline: stream done, still serving on %s (interrupt to exit)\n", cfg.httpAddr)
		awaitStop(cfg.stop)
		shutdownServer(srv, errw)
	}
	return nil
}

// runStreams hosts a multi-tenant registry of named streams behind the HTTP
// API: stdin is not read, every stream is ingested through POST
// /streams/{name}/push, and -wal DIR (if set) roots the durable streams'
// namespaces. Durable streams checkpoint at clean shutdown.
func runStreams(cfg config, errw io.Writer) error {
	if cfg.httpAddr == "" {
		return fmt.Errorf("-streams requires -http: streams are ingested over HTTP")
	}
	if cfg.ckpt != "" {
		return fmt.Errorf("-streams and -checkpoint are mutually exclusive: durable streams checkpoint through -wal")
	}
	specs, err := pskyline.ParseStreamSpecs(cfg.streams)
	if err != nil {
		return err
	}
	var base pskyline.Durability
	if cfg.walDir != "" {
		base = pskyline.Durability{
			Dir:             cfg.walDir,
			Fsync:           cfg.walFsync,
			Policy:          cfg.walPolicy,
			SegmentBytes:    int64(cfg.walSegmentMB) << 20,
			CheckpointEvery: cfg.walCkptEvery,
			InjectFaults:    cfg.walFault,
			FaultSeed:       cfg.walFaultSeed,
		}
	}
	reg := pskyline.NewStreamRegistry(base)
	defer reg.CloseAll()
	for _, sc := range specs {
		op, err := reg.Open(sc)
		if err != nil {
			return err
		}
		if rec := op.Recovery(); rec.Recovered {
			fmt.Fprintf(errw, "pskyline: stream %s: recovered checkpoint seq %d + %d replayed records in %v\n",
				sc.Name, rec.CheckpointSeq, rec.Replayed, rec.Duration.Round(time.Millisecond))
		}
	}
	srv, err := startServer(cfg.httpAddr, newRegistryMux(reg), errw)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(errw, "pskyline: hosting %d streams: %s (interrupt to exit)\n",
		len(specs), strings.Join(reg.Names(), ", "))
	awaitStop(cfg.stop)
	shutdownServer(srv, errw)
	for _, name := range reg.Names() {
		cfg, _ := reg.Config(name)
		if !cfg.Durable {
			continue
		}
		if op, ok := reg.Get(name); ok {
			op.Drain()
			if err := op.Checkpoint(); err != nil {
				fmt.Fprintf(errw, "pskyline: stream %s: checkpoint: %v\n", name, err)
			} else {
				fmt.Fprintf(errw, "pskyline: stream %s: checkpoint installed at seq %d\n",
					name, op.Stats().Processed)
			}
		}
	}
	return reg.CloseAll()
}

// awaitStop blocks until stop closes, or — when stop is nil — until the
// process receives SIGINT or SIGTERM.
func awaitStop(stop <-chan struct{}) {
	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		done := make(chan struct{})
		go func() { <-sig; close(done) }()
		stop = done
	}
	<-stop
}

// shutdownServer gracefully drains the HTTP server: stop accepting, let
// in-flight requests finish within the deadline; the caller's deferred Close
// is the hard backstop.
func shutdownServer(srv *http.Server, errw io.Writer) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(errw, "pskyline: http shutdown: %v\n", err)
	}
}

// parseRouter maps the -router flag to a shard router.
func parseRouter(name string) (pskyline.Router, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "grid":
		return pskyline.GridRouter{}, nil
	case "band":
		return pskyline.BandRouter{}, nil
	default:
		return nil, fmt.Errorf("unknown router %q: want grid or band", name)
	}
}

// printShardSummary renders the -summary block for a sharded session: the
// merged view's aggregate work counters plus one line per shard, then the
// shards' merged latency picture.
func printShardSummary(out io.Writer, sm *pskyline.ShardedMonitor) {
	var anyLat bool
	for i := 0; i < sm.NumShards(); i++ {
		met := sm.Shard(i).Metrics()
		c := met.Counters
		fmt.Fprintf(out, "shard %d: processed=%d candidates=%d skyline=%d nodes=%d items=%d expiries=%d\n",
			i, met.Stats.Processed, met.Stats.Candidates, met.Stats.Skyline,
			c.NodesVisited, c.ItemsTouched, c.Expiries)
		if w := met.WAL; w != nil {
			fmt.Fprintf(out, "shard %d wal: state=%s appends=%d commits=%d checkpoints=%d\n",
				i, w.State, w.Appends, w.Commits, w.Checkpoints)
		}
		if lm := met.Latency; lm != nil {
			anyLat = true
			fmt.Fprintf(out, "shard %d visible: n=%d p50=%v p99=%v max=%v\n",
				i, lm.Visible.TotalCount,
				time.Duration(lm.Visible.P50Ns).Round(time.Nanosecond),
				time.Duration(lm.Visible.P99Ns).Round(time.Nanosecond),
				time.Duration(lm.Visible.MaxNs))
		}
	}
	if anyLat {
		fi := sm.Flight()
		fmt.Fprintf(out, "flight (merged): recorded=%d slow=%d threshold=%v\n",
			fi.Recorded, fi.SlowLatched, fi.SlowThreshold)
	}
}

// printLatencySummary renders the ingest-to-visibility latency block of
// -summary: recent-window quantiles for the applied and visible intervals,
// the flight recorder counters, and the worst latched slow spans with their
// stage breakdowns. No-op when tracking is disabled (lm == nil).
func printLatencySummary(out io.Writer, lm *pskyline.LatencyMetrics, fi pskyline.FlightInfo) {
	if lm == nil {
		return
	}
	fmt.Fprintf(out, "latency (recent %v window; log2-bucket quantiles, within a factor of sqrt(2) of exact — ±1 bucket, at most 2x)\n",
		lm.Window)
	row := func(name string, s pskyline.LatencySummary) {
		fmt.Fprintf(out, "  %-8s n=%-8d p50=%-10v p99=%-10v p999=%-10v max=%v\n",
			name, s.Count,
			time.Duration(s.P50Ns).Round(time.Nanosecond),
			time.Duration(s.P99Ns).Round(time.Nanosecond),
			time.Duration(s.P999Ns).Round(time.Nanosecond),
			time.Duration(s.MaxNs))
	}
	row("applied", lm.Applied)
	row("visible", lm.Visible)
	fmt.Fprintf(out, "flight: recorded=%d slow=%d threshold=%v\n",
		lm.FlightSpans, lm.SlowSpans, lm.SlowThreshold)
	slow := fi.Slow
	if len(slow) > 3 {
		slow = slow[len(slow)-3:]
	}
	stages := pskyline.SpanStages()
	for _, sp := range slow {
		fmt.Fprintf(out, "slow: seq=%d batch=%d total=%v wait=%v apply=%v publish=%v",
			sp.Seq, sp.Batch,
			time.Duration(sp.TotalNs), time.Duration(sp.WaitNs),
			time.Duration(sp.ApplyNs), time.Duration(sp.PublishNs))
		for j, name := range stages {
			if sp.StageNs[j] > 0 {
				fmt.Fprintf(out, " %s=%v", name, time.Duration(sp.StageNs[j]))
			}
		}
		fmt.Fprintln(out)
	}
}

// printWorkSummary renders the -summary observability block: the engine's
// work counters, skyline churn, and per-stage latency quantiles.
func printWorkSummary(out io.Writer, met pskyline.Metrics) {
	c := met.Counters
	fmt.Fprintf(out, "work: nodes=%d items=%d lazy=%d removals=%d moves=%d expiries=%d\n",
		c.NodesVisited, c.ItemsTouched, c.LazyApplied, c.Removals, c.Moves, c.Expiries)
	fmt.Fprintf(out, "churn: enters=%d leaves=%d publishes=%d mean_prob=%.3f\n",
		met.SkylineEnters, met.SkylineLeaves, met.ViewPublishes, met.MeanProb)
	fmt.Fprintf(out, "theory: E|SKY| <= %.1f (observed %d), E|S| <= %.1f (observed %d)\n",
		met.TheorySkylineBound, met.Stats.Skyline,
		met.TheoryCandidateBound, met.Stats.Candidates)
	if met.QueueCapacity > 0 {
		fmt.Fprintf(out, "queue: depth=%d capacity=%d dropped=%d\n",
			met.QueueDepth, met.QueueCapacity, met.QueueDropped)
	}
	if w := met.WAL; w != nil {
		fmt.Fprintf(out, "wal: appends=%d bytes=%d commits=%d fsyncs=%d rotations=%d segments=%d size=%d\n",
			w.Appends, w.AppendedBytes, w.Commits, w.Fsyncs,
			w.Rotations, w.Segments, w.SizeBytes)
		fmt.Fprintf(out, "wal: state=%s write_errors=%d retries=%d dropped_records=%d dropped_bytes=%d reattaches=%d\n",
			w.State, w.WriteErrors, w.Retries, w.DroppedRecords, w.DroppedBytes, w.Reattaches)
		if w.LastFault != "" {
			fmt.Fprintf(out, "wal: last_fault=%q\n", w.LastFault)
		}
		fmt.Fprintf(out, "ckpt: installed=%d failures=%d seq=%d gc_segments=%d\n",
			w.Checkpoints, w.CheckpointFailures, w.CheckpointSeq, w.GCSegments)
		if rec := w.Recovery; rec.Recovered {
			fmt.Fprintf(out, "recovery: checkpoint_seq=%d replayed=%d truncated_bytes=%d segments_dropped=%d duration=%v\n",
				rec.CheckpointSeq, rec.Replayed, rec.TruncatedBytes,
				rec.SegmentsDropped, rec.Duration.Round(time.Microsecond))
		}
	}
	for _, s := range met.Stages {
		fmt.Fprintf(out, "stage %-10s n=%-8d p50=%-10v p99=%-10v max=%v\n",
			s.Stage, s.Count,
			time.Duration(s.P50Ns).Round(time.Nanosecond),
			time.Duration(s.P99Ns).Round(time.Nanosecond),
			time.Duration(s.MaxNs))
	}
}

// parseLine parses "x1,...,xd,prob[,ts]".
func parseLine(line string, dims int) (pskyline.Element, error) {
	parts := strings.Split(line, ",")
	if len(parts) != dims+1 && len(parts) != dims+2 {
		return pskyline.Element{}, fmt.Errorf("want %d or %d fields, got %d", dims+1, dims+2, len(parts))
	}
	el := pskyline.Element{Point: make([]float64, dims)}
	for i := 0; i < dims; i++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return el, fmt.Errorf("coordinate %d: %v", i, err)
		}
		el.Point[i] = v
	}
	p, err := strconv.ParseFloat(strings.TrimSpace(parts[dims]), 64)
	if err != nil {
		return el, fmt.Errorf("probability: %v", err)
	}
	el.Prob = p
	if len(parts) == dims+2 {
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[dims+1]), 10, 64)
		if err != nil {
			return el, fmt.Errorf("timestamp: %v", err)
		}
		el.TS = ts
	}
	return el, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pskyline: "+format+"\n", args...)
	os.Exit(1)
}
