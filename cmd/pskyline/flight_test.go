package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pskyline"
)

// flightDumpJSON mirrors the wire shape of /debug/flight.
type flightDumpJSON struct {
	SlowThresholdNs int64      `json:"slow_threshold_ns"`
	Recorded        uint64     `json:"recorded"`
	SlowLatched     uint64     `json:"slow_latched"`
	Recent          []spanJSON `json:"recent"`
	Slow            []spanJSON `json:"slow"`
}

func TestServeMuxBuildinfo(t *testing.T) {
	m := serveMonitor(t)
	srv := httptest.NewServer(newServeMux(newMonitorHandle(m), nil))
	defer srv.Close()

	body, hdr := get(t, srv, "/buildinfo")
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/buildinfo content type %q", ct)
	}
	var bi buildInfo
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatalf("/buildinfo invalid JSON: %v", err)
	}
	if bi.GoVersion == "" {
		t.Errorf("/buildinfo missing go_version: %s", body)
	}
	if bi.Module != "pskyline" {
		t.Errorf("/buildinfo module = %q, want pskyline", bi.Module)
	}

	// The healthz body carries the abbreviated revision whenever the binary
	// has a VCS stamp (test binaries usually don't — then the key is absent).
	health, _ := get(t, srv, "/healthz")
	var h map[string]any
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("/healthz invalid JSON: %v", err)
	}
	rev, present := h["revision"]
	if want := build.shortRevision(); want == "" {
		if present {
			t.Errorf("/healthz revision = %v with no VCS stamp", rev)
		}
	} else if rev != want {
		t.Errorf("/healthz revision = %v, want %q", rev, want)
	}
}

func TestServeMuxFlight(t *testing.T) {
	m := serveMonitor(t)
	srv := httptest.NewServer(newServeMux(newMonitorHandle(m), nil))
	defer srv.Close()

	body, hdr := get(t, srv, "/debug/flight")
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/debug/flight content type %q", ct)
	}
	var fd flightDumpJSON
	if err := json.Unmarshal([]byte(body), &fd); err != nil {
		t.Fatalf("/debug/flight invalid JSON: %v", err)
	}
	if fd.Recorded != 800 {
		t.Errorf("/debug/flight recorded = %d, want 800", fd.Recorded)
	}
	if fd.SlowThresholdNs <= 0 {
		t.Errorf("/debug/flight slow_threshold_ns = %d", fd.SlowThresholdNs)
	}
	if len(fd.Recent) == 0 {
		t.Fatal("/debug/flight has no recent spans")
	}
	stages := pskyline.SpanStages()
	for i, sp := range fd.Recent {
		if sp.WaitNs < 0 || sp.ApplyNs < 0 || sp.PublishNs < 0 {
			t.Fatalf("span %d: negative phase: %+v", i, sp)
		}
		if sp.WaitNs+sp.ApplyNs+sp.PublishNs != sp.TotalNs {
			t.Fatalf("span %d: phases do not sum to total: %+v", i, sp)
		}
		if sp.Batch != 1 || sp.Shard != -1 || sp.Queue != -1 {
			t.Fatalf("span %d: batch/shard/queue = %d/%d/%d, want 1/-1/-1",
				i, sp.Batch, sp.Shard, sp.Queue)
		}
		if sp.Admitted == "" {
			t.Fatalf("span %d: empty admitted timestamp", i)
		}
		for name := range sp.StageNs {
			found := false
			for _, s := range stages {
				if s == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("span %d: unknown stage %q", i, name)
			}
		}
	}
}

func TestRegistryMuxFlightAndBuildinfo(t *testing.T) {
	reg := pskyline.NewStreamRegistry(pskyline.Durability{})
	defer reg.CloseAll()
	specs, err := pskyline.ParseStreamSpecs("hot:dims=2,window=100,q=0.3")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Open(specs[0]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newRegistryMux(reg))
	defer srv.Close()

	var nd bytes.Buffer
	enc := json.NewEncoder(&nd)
	for _, l := range genCSV(7, 50) {
		el, err := parseLine(l, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(el); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := srv.Client().Post(srv.URL+"/streams/hot/push", "application/x-ndjson", &nd)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("push status %d", resp.StatusCode)
	}

	body, _ := get(t, srv, "/streams/hot/flight")
	var fd flightDumpJSON
	if err := json.Unmarshal([]byte(body), &fd); err != nil {
		t.Fatalf("/streams/hot/flight invalid JSON: %v", err)
	}
	if fd.Recorded == 0 || len(fd.Recent) == 0 {
		t.Errorf("/streams/hot/flight recorded=%d recent=%d, want spans",
			fd.Recorded, len(fd.Recent))
	}

	bi, _ := get(t, srv, "/buildinfo")
	var b buildInfo
	if err := json.Unmarshal([]byte(bi), &b); err != nil {
		t.Fatalf("/buildinfo invalid JSON: %v", err)
	}
	if b.GoVersion == "" {
		t.Errorf("/buildinfo missing go_version: %s", bi)
	}

	if resp, err := srv.Client().Get(srv.URL + "/streams/nope/flight"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown stream flight status %d, want 404", resp.StatusCode)
		}
	}
}

func TestBuildInfoString(t *testing.T) {
	b := buildInfo{
		GoVersion: "go1.24", Module: "pskyline", Version: "(devel)",
		Revision: "0123456789abcdef0123", Time: "2026-08-08T00:00:00Z", Dirty: true,
	}
	if got, want := b.shortRevision(), "0123456789ab-dirty"; got != want {
		t.Errorf("shortRevision = %q, want %q", got, want)
	}
	s := b.String()
	for _, want := range []string{"pskyline (devel)", "go1.24", "0123456789ab-dirty", "built 2026-08-08T00:00:00Z"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	if got := (buildInfo{}).shortRevision(); got != "" {
		t.Errorf("empty shortRevision = %q, want empty", got)
	}
}

// TestRunSummaryLatencyBlock pins the -summary latency output: with tracking
// on (the default) the block reports recent-window quantiles with the
// log2-bucket error-bound note; with -no-latency it is absent entirely.
func TestRunSummaryLatencyBlock(t *testing.T) {
	lines := genCSV(9, 600)
	base := config{dims: 2, window: 200, thresholds: []float64{0.3}, batch: 1, summary: true}

	out := runSession(t, base, lines)
	for _, want := range []string{
		"latency (recent",
		"log2-bucket quantiles, within a factor of sqrt(2) of exact — ±1 bucket, at most 2x",
		"applied", "visible",
		"flight: recorded=600",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-summary output missing %q:\n%s", want, out)
		}
	}

	off := base
	off.noLatency = true
	out = runSession(t, off, lines)
	for _, bad := range []string{"latency (recent", "flight:"} {
		if strings.Contains(out, bad) {
			t.Errorf("-no-latency -summary output still contains %q:\n%s", bad, out)
		}
	}
}

// TestRunSummaryShardLatency checks the sharded -summary path: per-shard
// visible-latency lines plus the merged flight counters.
func TestRunSummaryShardLatency(t *testing.T) {
	lines := genCSV(13, 600)
	cfg := config{
		dims: 2, window: 200, thresholds: []float64{0.3}, batch: 8,
		shards: 3, summary: true,
	}
	out := runSession(t, cfg, lines)
	for _, want := range []string{"shard 0 visible:", "shard 2 visible:", "flight (merged): recorded="} {
		if !strings.Contains(out, want) {
			t.Errorf("sharded -summary output missing %q:\n%s", want, out)
		}
	}
}
