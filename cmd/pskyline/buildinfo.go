package main

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// buildInfo is what the binary knows about itself: the Go toolchain, the
// module version, and — when built from a git checkout with module-aware
// `go build` — the VCS revision, commit time and dirty-worktree flag that
// runtime/debug.ReadBuildInfo stamps into the binary. It is served by
// /buildinfo, folded into /healthz, and printed by -version, so an operator
// can always tie a running process back to the exact source state it was
// built from.
type buildInfo struct {
	GoVersion string `json:"go_version"`
	Module    string `json:"module"`
	Version   string `json:"version"`
	Revision  string `json:"vcs_revision,omitempty"`
	Time      string `json:"vcs_time,omitempty"`
	Dirty     bool   `json:"vcs_dirty"`
}

// readBuildInfo decodes the build metadata baked into the binary. Fields
// missing from the binary (e.g. a non-VCS build) stay empty.
func readBuildInfo() buildInfo {
	out := buildInfo{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	out.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.Time = s.Value
		case "vcs.modified":
			out.Dirty = s.Value == "true"
		}
	}
	return out
}

// shortRevision renders the revision for log lines and health bodies:
// abbreviated, with a "-dirty" suffix for modified worktrees, "" when the
// binary carries no VCS stamp.
func (b buildInfo) shortRevision() string {
	if b.Revision == "" {
		return ""
	}
	rev := b.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if b.Dirty {
		rev += "-dirty"
	}
	return rev
}

func (b buildInfo) String() string {
	s := fmt.Sprintf("pskyline %s (%s, %s)", b.Version, b.Module, b.GoVersion)
	if rev := b.shortRevision(); rev != "" {
		s += " revision " + rev
		if b.Time != "" {
			s += " built " + b.Time
		}
	}
	return s
}

// build is the process-wide build stamp, read once at startup.
var build = readBuildInfo()
