package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"pskyline"
	"pskyline/internal/obs"
	"pskyline/internal/wal"
)

// opBox wraps the Operator interface so it can live in an atomic.Pointer.
type opBox struct{ op pskyline.Operator }

// monitorHandle is the indirection that lets the HTTP server come up before
// crash recovery finishes: the operator pointer is nil while Open replays the
// log, and every endpoint answers 503 {"status":"recovering"} until the
// recovered operator is stored. Readiness probes can therefore hold traffic
// back during a long replay instead of reading a half-recovered state. The
// handle serves either a single *Monitor or a *ShardedMonitor — both
// implement pskyline.Operator. With progress set, the 503 body also carries
// live replay progress (segments decoded/total, records re-ingested), so a
// probe can tell a long replay from a wedged one.
type monitorHandle struct {
	mon      atomic.Pointer[opBox]
	progress *pskyline.RecoveryProgress
}

func newMonitorHandle(op pskyline.Operator) *monitorHandle {
	h := &monitorHandle{}
	if op != nil {
		h.mon.Store(&opBox{op: op})
	}
	return h
}

func (h *monitorHandle) set(op pskyline.Operator) { h.mon.Store(&opBox{op: op}) }

// ready answers 503 and reports false while recovery is still running.
func (h *monitorHandle) ready(w http.ResponseWriter) (pskyline.Operator, bool) {
	b := h.mon.Load()
	if b == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		body := map[string]any{"status": "recovering"}
		if p := h.progress; p != nil {
			body["segments_decoded"] = p.SegmentsDecoded()
			body["segments_total"] = p.SegmentsTotal()
			body["records_replayed"] = p.RecordsReplayed()
		}
		json.NewEncoder(w).Encode(body)
		return nil, false
	}
	return b.op, true
}

// newServeMux builds the observability endpoint set over a live operator.
// Every handler reads the lock-free export surfaces (the published view, the
// atomic metric mirrors, the trace ring), so scraping — even aggressively —
// never blocks ingestion.
//
// rs carries the node's replication role (nil = standalone): /healthz
// reports role and lag, /metrics appends the replication series, /skyline
// serves read-only queries, POST /push ingests (403 on replicas — they
// accept writes only from their primary) and POST /promote flips a replica
// into a writable primary.
//
//	/metrics        Prometheus text exposition
//	/healthz        liveness + stream position + replication role JSON;
//	                "serving" once ready, 503 "recovering" while crash
//	                recovery replays the log
//	/skyline        current skyline JSON (replicas serve this read-only)
//	/push           POST NDJSON elements {"point":[..],"prob":p,"ts":t};
//	                403 on a replica; ?drain=1 waits for visibility
//	/promote        POST: promote this replica to a writable primary;
//	                409 unless the node is a replica
//	/buildinfo      build metadata (VCS revision, dirty flag, Go version)
//	/debug/skyline  current skyline (and, for a single monitor, the
//	                recent-transition trace), JSON
//	/debug/flight   flight recorder dump: recent write spans + latched slow
//	                spans with per-stage breakdowns, JSON
//	/debug/vars     all metrics as one expvar-style JSON object
//	/debug/pprof/   the standard runtime profiles
func newServeMux(h *monitorHandle, rs *replState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
		rs.writePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		body := operatorHealth(m)
		rs.decorateHealth(body)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("GET /skyline", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		v := m.View()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"processed": v.Processed(),
			"skyline":   skylineJSON(v.Skyline()),
		})
	})
	mux.HandleFunc("POST /push", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		if rs.role() == "replica" {
			httpError(w, http.StatusForbidden, "read-only replica: writes go to the primary (or POST /promote)")
			return
		}
		accepted, err := pushNDJSON(m, r.Body)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, pskyline.ErrOverloaded) {
				code = http.StatusTooManyRequests
			} else if errors.Is(err, pskyline.ErrClosed) {
				code = http.StatusConflict
			}
			httpError(w, code, fmt.Sprintf("after %d accepted: %v", accepted, err))
			return
		}
		if r.URL.Query().Get("drain") == "1" {
			m.Drain()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"accepted": accepted})
	})
	mux.HandleFunc("POST /promote", func(w http.ResponseWriter, r *http.Request) {
		body, code := rs.promote(h)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/skyline", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		v := m.View()
		body := map[string]any{
			"processed":  v.Processed(),
			"thresholds": v.Thresholds(),
			"skyline":    skylineJSON(v.Skyline()),
		}
		// The transition trace is per-engine state; a sharded operator has
		// no global trace (bands churn independently per shard).
		if mon, ok := m.(*pskyline.Monitor); ok {
			body["trace"] = traceJSON(mon.Trace())
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(flightJSON(m.Flight()))
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		m.WriteMetricsJSON(w)
	})
	addBuildinfo(mux)
	addPprof(mux)
	return mux
}

// addBuildinfo serves the binary's build stamp.
func addBuildinfo(mux *http.ServeMux) {
	mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(build)
	})
}

// operatorHealth builds the /healthz body for one operator. A single
// *Monitor reports its full metric mirror (queue depth, WAL counters); a
// sharded operator reports the merged stream position plus the worst
// per-shard WAL state.
func operatorHealth(m pskyline.Operator) map[string]any {
	body := map[string]any{"status": "serving"}
	if rev := build.shortRevision(); rev != "" {
		body["revision"] = rev
	}
	switch t := m.(type) {
	case *pskyline.Monitor:
		met := t.Metrics()
		body["processed"] = met.Stats.Processed
		body["skyline"] = met.Stats.Skyline
		body["candidates"] = met.Stats.Candidates
		body["publish_age_seconds"] = time.Since(met.LastPublish).Seconds()
		if w := met.WAL; w != nil {
			body["wal_state"] = w.State
			if w.State == "degraded" || w.State == "detached" {
				// Still 200 — the monitor serves — but the status tells
				// probes durability is gone.
				body["status"] = w.State
			}
			if w.LastFault != "" {
				body["wal_last_fault"] = w.LastFault
			}
			if w.DroppedRecords > 0 {
				body["wal_dropped_records"] = w.DroppedRecords
			}
		}
		if met.QueueCapacity > 0 {
			body["queue_depth"] = met.QueueDepth
			body["queue_capacity"] = met.QueueCapacity
			body["queue_dropped"] = met.QueueDropped
		}
	default:
		st := m.Stats()
		body["processed"] = st.Processed
		body["skyline"] = st.Skyline
		body["candidates"] = st.Candidates
		if sm, ok := m.(*pskyline.ShardedMonitor); ok {
			body["shards"] = sm.NumShards()
		}
		if ws := m.WALState(); ws != wal.StateHealthy {
			body["wal_state"] = ws.String()
			if ws == wal.StateDegraded || ws == wal.StateDetached {
				body["status"] = ws.String()
			}
		}
	}
	if rec := m.Recovery(); rec.Recovered {
		body["recovery"] = map[string]any{
			"checkpoint_seq":   rec.CheckpointSeq,
			"replayed":         rec.Replayed,
			"truncated_bytes":  rec.TruncatedBytes,
			"segments_dropped": rec.SegmentsDropped,
			"duration_seconds": rec.Duration.Seconds(),
		}
	}
	return body
}

// newRegistryMux builds the multi-tenant endpoint set over a stream
// registry. One /metrics endpoint serves every stream (series carry
// stream="<name>" and, for sharded streams, shard="<i>" labels), and each
// stream is addressable by name for ingestion and queries:
//
//	/metrics                Prometheus exposition for all streams
//	/healthz                per-stream positions + worst WAL state
//	/streams                GET: list open streams with positions
//	/streams/{name}/push    POST: NDJSON {"point":[...],"prob":p,"ts":t}
//	                        per line; ?drain=1 waits for visibility
//	/streams/{name}/skyline GET: current skyline; ?q=Q restricts to a
//	                        stricter registered threshold
//	/streams/{name}/flight  GET: the stream's flight recorder dump
//	/buildinfo              build metadata (VCS revision, Go version)
//	/debug/vars             all metrics as one JSON object
//	/debug/pprof/           the standard runtime profiles
func newRegistryMux(reg *pskyline.StreamRegistry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteMetricsJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		streams := map[string]any{}
		status := "serving"
		for _, name := range reg.Names() {
			op, ok := reg.Get(name)
			if !ok {
				continue
			}
			sh := operatorHealth(op)
			if s, _ := sh["status"].(string); s != "serving" && status == "serving" {
				status = s
			}
			delete(sh, "status")
			streams[name] = sh
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"status": status, "streams": streams})
	})
	mux.HandleFunc("GET /streams", func(w http.ResponseWriter, r *http.Request) {
		type streamJSON struct {
			Name       string `json:"name"`
			Shards     int    `json:"shards"`
			Processed  uint64 `json:"processed"`
			Skyline    int    `json:"skyline"`
			Candidates int    `json:"candidates"`
			WALState   string `json:"wal_state"`
		}
		out := []streamJSON{}
		for _, name := range reg.Names() {
			op, ok := reg.Get(name)
			if !ok {
				continue
			}
			cfg, _ := reg.Config(name)
			st := op.Stats()
			out = append(out, streamJSON{
				Name: name, Shards: cfg.Shards,
				Processed: st.Processed, Skyline: st.Skyline,
				Candidates: st.Candidates, WALState: op.WALState().String(),
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"streams": out})
	})
	mux.HandleFunc("POST /streams/{name}/push", func(w http.ResponseWriter, r *http.Request) {
		op, ok := lookupStream(reg, w, r)
		if !ok {
			return
		}
		accepted, err := pushNDJSON(op, r.Body)
		if err != nil {
			code := http.StatusBadRequest
			if errors.Is(err, pskyline.ErrOverloaded) {
				code = http.StatusTooManyRequests
			} else if errors.Is(err, pskyline.ErrClosed) {
				code = http.StatusConflict
			}
			httpError(w, code, fmt.Sprintf("after %d accepted: %v", accepted, err))
			return
		}
		if r.URL.Query().Get("drain") == "1" {
			op.Drain()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"accepted": accepted})
	})
	mux.HandleFunc("GET /streams/{name}/skyline", func(w http.ResponseWriter, r *http.Request) {
		op, ok := lookupStream(reg, w, r)
		if !ok {
			return
		}
		var (
			sky []pskyline.SkyPoint
			err error
		)
		if qs := r.URL.Query().Get("q"); qs != "" {
			q, perr := strconv.ParseFloat(qs, 64)
			if perr != nil {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("bad q: %v", perr))
				return
			}
			sky, err = op.Query(q)
			if err != nil {
				httpError(w, http.StatusBadRequest, err.Error())
				return
			}
		} else {
			sky = op.Skyline()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"processed": op.Stats().Processed,
			"skyline":   skylineJSON(sky),
		})
	})
	mux.HandleFunc("GET /streams/{name}/flight", func(w http.ResponseWriter, r *http.Request) {
		op, ok := lookupStream(reg, w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(flightJSON(op.Flight()))
	})
	addBuildinfo(mux)
	addPprof(mux)
	return mux
}

// spanJSON is the wire form of one flight span: phase durations in
// nanoseconds, the engine stage breakdown keyed by stage name, and the
// admission stamp converted to wall clock.
type spanJSON struct {
	Seq       uint64           `json:"seq"`
	Batch     int32            `json:"batch"`
	Shard     int32            `json:"shard"`
	Queue     int32            `json:"queue"`
	Admitted  string           `json:"admitted"`
	WaitNs    int64            `json:"wait_ns"`
	ApplyNs   int64            `json:"apply_ns"`
	PublishNs int64            `json:"publish_ns"`
	TotalNs   int64            `json:"total_ns"`
	StageNs   map[string]int64 `json:"stage_ns"`
}

func flightJSON(fi pskyline.FlightInfo) map[string]any {
	stages := pskyline.SpanStages()
	spans := func(in []obs.Span) []spanJSON {
		out := make([]spanJSON, len(in))
		for i, sp := range in {
			sj := spanJSON{
				Seq: sp.Seq, Batch: sp.Batch, Shard: sp.Shard, Queue: sp.Queue,
				Admitted: pskyline.SpanAdmitTime(sp).Format(time.RFC3339Nano),
				WaitNs:   sp.WaitNs, ApplyNs: sp.ApplyNs,
				PublishNs: sp.PublishNs, TotalNs: sp.TotalNs,
				StageNs: map[string]int64{},
			}
			for j, name := range stages {
				if sp.StageNs[j] != 0 {
					sj.StageNs[name] = sp.StageNs[j]
				}
			}
			out[i] = sj
		}
		return out
	}
	return map[string]any{
		"slow_threshold_ns": fi.SlowThreshold.Nanoseconds(),
		"recorded":          fi.Recorded,
		"slow_latched":      fi.SlowLatched,
		"recent":            spans(fi.Recent),
		"slow":              spans(fi.Slow),
	}
}

func lookupStream(reg *pskyline.StreamRegistry, w http.ResponseWriter, r *http.Request) (pskyline.Operator, bool) {
	name := r.PathValue("name")
	op, ok := reg.Get(name)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown stream %q", name))
		return nil, false
	}
	return op, true
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{"error": msg})
}

// pushElementJSON is the wire form of one ingested element (NDJSON line).
type pushElementJSON struct {
	Point []float64 `json:"point"`
	Prob  float64   `json:"prob"`
	TS    int64     `json:"ts"`
}

// pushNDJSON streams newline-delimited JSON elements into op in bounded
// batches, returning how many elements were accepted before any error.
func pushNDJSON(op pskyline.Operator, body io.Reader) (int, error) {
	const batchSize = 256
	dec := json.NewDecoder(body)
	batch := make([]pskyline.Element, 0, batchSize)
	accepted := 0
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := op.PushBatch(batch); err != nil {
			return err
		}
		accepted += len(batch)
		batch = batch[:0]
		return nil
	}
	for {
		var p pushElementJSON
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			if ferr := flush(); ferr != nil {
				return accepted, ferr
			}
			return accepted, fmt.Errorf("element %d: %v", accepted+len(batch)+1, err)
		}
		batch = append(batch, pskyline.Element{Point: p.Point, Prob: p.Prob, TS: p.TS})
		if len(batch) == batchSize {
			if err := flush(); err != nil {
				return accepted, err
			}
		}
	}
	return accepted, flush()
}

func addPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// skyPointJSON is the wire form of a skyline member (payloads are omitted:
// they are arbitrary Go values).
type skyPointJSON struct {
	Seq   uint64    `json:"seq"`
	Point []float64 `json:"point"`
	Prob  float64   `json:"prob"`
	Psky  float64   `json:"psky"`
}

func skylineJSON(sky []pskyline.SkyPoint) []skyPointJSON {
	out := make([]skyPointJSON, len(sky))
	for i, p := range sky {
		out[i] = skyPointJSON{Seq: p.Seq, Point: p.Point, Prob: p.Prob, Psky: p.Psky}
	}
	return out
}

// traceEventJSON is the wire form of one recorded skyline transition.
type traceEventJSON struct {
	Seq       uint64    `json:"seq"`
	Entered   bool      `json:"entered"`
	Point     []float64 `json:"point"`
	Prob      float64   `json:"prob"`
	Psky      float64   `json:"psky"`
	FromBand  int       `json:"from_band"`
	ToBand    int       `json:"to_band"`
	At        string    `json:"at"`
	Processed uint64    `json:"processed"`
}

func traceJSON(tr []pskyline.TraceEvent) []traceEventJSON {
	out := make([]traceEventJSON, len(tr))
	for i, ev := range tr {
		out[i] = traceEventJSON{
			Seq: ev.Seq, Entered: ev.Entered, Point: ev.Point,
			Prob: ev.Prob, Psky: ev.Psky,
			FromBand: ev.FromBand, ToBand: ev.ToBand,
			At: ev.At.Format(time.RFC3339Nano), Processed: ev.Processed,
		}
	}
	return out
}

// startServer binds addr and serves the given handler in the background.
// The returned server is already accepting connections; the caller shuts it
// down with Close.
func startServer(addr string, handler http.Handler, errw io.Writer) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen %s: %v", addr, err)
	}
	srv := &http.Server{
		Handler: handler,
		// Hardening against slow or stuck clients: a slowloris peer cannot
		// hold a connection open indefinitely, and a wedged response write
		// cannot pin a handler goroutine forever. WriteTimeout leaves room
		// for multi-second pprof profile captures.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	fmt.Fprintf(errw, "pskyline: serving on http://%s\n", ln.Addr())
	return srv, nil
}
