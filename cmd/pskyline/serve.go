package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"pskyline"
)

// monitorHandle is the indirection that lets the HTTP server come up before
// crash recovery finishes: the monitor pointer is nil while Open replays the
// log, and every endpoint answers 503 {"status":"recovering"} until the
// recovered monitor is stored. Readiness probes can therefore hold traffic
// back during a long replay instead of reading a half-recovered state.
type monitorHandle struct {
	mon atomic.Pointer[pskyline.Monitor]
}

func newMonitorHandle(m *pskyline.Monitor) *monitorHandle {
	h := &monitorHandle{}
	if m != nil {
		h.mon.Store(m)
	}
	return h
}

func (h *monitorHandle) set(m *pskyline.Monitor) { h.mon.Store(m) }

// ready answers 503 and reports false while recovery is still running.
func (h *monitorHandle) ready(w http.ResponseWriter) (*pskyline.Monitor, bool) {
	m := h.mon.Load()
	if m == nil {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]any{"status": "recovering"})
		return nil, false
	}
	return m, true
}

// newServeMux builds the observability endpoint set over a live Monitor.
// Every handler reads the lock-free export surfaces (the published view, the
// atomic metric mirrors, the trace ring), so scraping — even aggressively —
// never blocks ingestion.
//
//	/metrics        Prometheus text exposition
//	/healthz        liveness + stream position JSON; "serving" once ready,
//	                503 "recovering" while crash recovery replays the log
//	/debug/skyline  current skyline and the recent-transition trace, JSON
//	/debug/vars     all metrics as one expvar-style JSON object
//	/debug/pprof/   the standard runtime profiles
func newServeMux(h *monitorHandle) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		met := m.Metrics()
		body := map[string]any{
			"status":              "serving",
			"processed":           met.Stats.Processed,
			"skyline":             met.Stats.Skyline,
			"candidates":          met.Stats.Candidates,
			"publish_age_seconds": time.Since(met.LastPublish).Seconds(),
		}
		if w := met.WAL; w != nil {
			body["wal_state"] = w.State
			if w.State == "degraded" || w.State == "detached" {
				// Still 200 — the monitor serves — but the status tells
				// probes durability is gone.
				body["status"] = w.State
			}
			if w.LastFault != "" {
				body["wal_last_fault"] = w.LastFault
			}
			if w.DroppedRecords > 0 {
				body["wal_dropped_records"] = w.DroppedRecords
			}
		}
		if met.QueueCapacity > 0 {
			body["queue_depth"] = met.QueueDepth
			body["queue_capacity"] = met.QueueCapacity
			body["queue_dropped"] = met.QueueDropped
		}
		if rec := m.Recovery(); rec.Recovered {
			body["recovery"] = map[string]any{
				"checkpoint_seq":   rec.CheckpointSeq,
				"replayed":         rec.Replayed,
				"truncated_bytes":  rec.TruncatedBytes,
				"segments_dropped": rec.SegmentsDropped,
				"duration_seconds": rec.Duration.Seconds(),
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
	mux.HandleFunc("/debug/skyline", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		v := m.View()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"processed":  v.Processed(),
			"thresholds": v.Thresholds(),
			"skyline":    skylineJSON(v.Skyline()),
			"trace":      traceJSON(m.Trace()),
		})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		m, ok := h.ready(w)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		m.WriteMetricsJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// skyPointJSON is the wire form of a skyline member (payloads are omitted:
// they are arbitrary Go values).
type skyPointJSON struct {
	Seq   uint64    `json:"seq"`
	Point []float64 `json:"point"`
	Prob  float64   `json:"prob"`
	Psky  float64   `json:"psky"`
}

func skylineJSON(sky []pskyline.SkyPoint) []skyPointJSON {
	out := make([]skyPointJSON, len(sky))
	for i, p := range sky {
		out[i] = skyPointJSON{Seq: p.Seq, Point: p.Point, Prob: p.Prob, Psky: p.Psky}
	}
	return out
}

// traceEventJSON is the wire form of one recorded skyline transition.
type traceEventJSON struct {
	Seq       uint64    `json:"seq"`
	Entered   bool      `json:"entered"`
	Point     []float64 `json:"point"`
	Prob      float64   `json:"prob"`
	Psky      float64   `json:"psky"`
	FromBand  int       `json:"from_band"`
	ToBand    int       `json:"to_band"`
	At        string    `json:"at"`
	Processed uint64    `json:"processed"`
}

func traceJSON(tr []pskyline.TraceEvent) []traceEventJSON {
	out := make([]traceEventJSON, len(tr))
	for i, ev := range tr {
		out[i] = traceEventJSON{
			Seq: ev.Seq, Entered: ev.Entered, Point: ev.Point,
			Prob: ev.Prob, Psky: ev.Psky,
			FromBand: ev.FromBand, ToBand: ev.ToBand,
			At: ev.At.Format(time.RFC3339Nano), Processed: ev.Processed,
		}
	}
	return out
}

// startServer binds addr and serves the observability mux in the background.
// The returned server is already accepting connections (answering 503 until
// the handle holds a monitor); the caller shuts it down with Close.
func startServer(addr string, h *monitorHandle, errw io.Writer) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen %s: %v", addr, err)
	}
	srv := &http.Server{
		Handler: newServeMux(h),
		// Hardening against slow or stuck clients: a slowloris peer cannot
		// hold a connection open indefinitely, and a wedged response write
		// cannot pin a handler goroutine forever. WriteTimeout leaves room
		// for multi-second pprof profile captures.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	fmt.Fprintf(errw, "pskyline: serving /metrics, /healthz, /debug/skyline, /debug/vars, /debug/pprof on http://%s\n", ln.Addr())
	return srv, nil
}
