package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"pskyline"
)

// newServeMux builds the observability endpoint set over a live Monitor.
// Every handler reads the lock-free export surfaces (the published view, the
// atomic metric mirrors, the trace ring), so scraping — even aggressively —
// never blocks ingestion.
//
//	/metrics        Prometheus text exposition
//	/healthz        liveness + stream position JSON
//	/debug/skyline  current skyline and the recent-transition trace, JSON
//	/debug/vars     all metrics as one expvar-style JSON object
//	/debug/pprof/   the standard runtime profiles
func newServeMux(m *pskyline.Monitor) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		met := m.Metrics()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"status":              "ok",
			"processed":           met.Stats.Processed,
			"skyline":             met.Stats.Skyline,
			"candidates":          met.Stats.Candidates,
			"publish_age_seconds": time.Since(met.LastPublish).Seconds(),
		})
	})
	mux.HandleFunc("/debug/skyline", func(w http.ResponseWriter, r *http.Request) {
		v := m.View()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"processed":  v.Processed(),
			"thresholds": v.Thresholds(),
			"skyline":    skylineJSON(v.Skyline()),
			"trace":      traceJSON(m.Trace()),
		})
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		m.WriteMetricsJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// skyPointJSON is the wire form of a skyline member (payloads are omitted:
// they are arbitrary Go values).
type skyPointJSON struct {
	Seq   uint64    `json:"seq"`
	Point []float64 `json:"point"`
	Prob  float64   `json:"prob"`
	Psky  float64   `json:"psky"`
}

func skylineJSON(sky []pskyline.SkyPoint) []skyPointJSON {
	out := make([]skyPointJSON, len(sky))
	for i, p := range sky {
		out[i] = skyPointJSON{Seq: p.Seq, Point: p.Point, Prob: p.Prob, Psky: p.Psky}
	}
	return out
}

// traceEventJSON is the wire form of one recorded skyline transition.
type traceEventJSON struct {
	Seq       uint64    `json:"seq"`
	Entered   bool      `json:"entered"`
	Point     []float64 `json:"point"`
	Prob      float64   `json:"prob"`
	Psky      float64   `json:"psky"`
	FromBand  int       `json:"from_band"`
	ToBand    int       `json:"to_band"`
	At        string    `json:"at"`
	Processed uint64    `json:"processed"`
}

func traceJSON(tr []pskyline.TraceEvent) []traceEventJSON {
	out := make([]traceEventJSON, len(tr))
	for i, ev := range tr {
		out[i] = traceEventJSON{
			Seq: ev.Seq, Entered: ev.Entered, Point: ev.Point,
			Prob: ev.Prob, Psky: ev.Psky,
			FromBand: ev.FromBand, ToBand: ev.ToBand,
			At: ev.At.Format(time.RFC3339Nano), Processed: ev.Processed,
		}
	}
	return out
}

// startServer binds addr and serves the observability mux in the background.
// The returned server is already accepting connections; the caller shuts it
// down with Close.
func startServer(addr string, m *pskyline.Monitor, errw io.Writer) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("http listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: newServeMux(m)}
	go srv.Serve(ln)
	fmt.Fprintf(errw, "pskyline: serving /metrics, /healthz, /debug/skyline, /debug/vars, /debug/pprof on http://%s\n", ln.Addr())
	return srv, nil
}
