package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"pskyline"
	"pskyline/internal/netfault"
	"pskyline/internal/repl"
)

// parseReplFault builds the seeded replication fault injector from
// -repl-fault / -repl-fault-seed (nil when no schedule is configured). Like
// -wal-fault-seed, seed 0 means 1 so "no flag" is still deterministic.
func parseReplFault(cfg config) (*netfault.Injector, error) {
	if cfg.replFault == "" {
		return nil, nil
	}
	seed := cfg.replFaultSeed
	if seed == 0 {
		seed = 1
	}
	inj, err := netfault.ParseSchedule(seed, cfg.replFault)
	if err != nil {
		return nil, fmt.Errorf("-repl-fault: %v", err)
	}
	return inj, nil
}

// printReplSummary appends the replication block to -summary output: lag
// per follower plus, with -repl-semisync-k, the semi-sync health machine.
func printReplSummary(w io.Writer, rs *replState) {
	rs.mu.Lock()
	s := rs.server
	rs.mu.Unlock()
	if s == nil {
		return
	}
	st := s.Status()
	fmt.Fprintf(w, "replication: epoch %d, %d follower(s), committed seq %d\n",
		st.Epoch, len(st.Followers), st.Committed)
	if st.SemiSyncK > 0 {
		reason := st.SyncReason
		if reason == "" {
			reason = "-"
		}
		fmt.Fprintf(w, "semi-sync: k=%d state=%s (%s), quorum-acked seq %d\n",
			st.SemiSyncK, st.SyncState, reason, st.QuorumAcked)
		fmt.Fprintf(w, "  waits %d (timeouts %d), degrades %d, upgrades %d, shortfalls %d\n",
			st.Waits, st.WaitTimeouts, st.Degrades, st.Upgrades, st.Shortfalls)
	}
}

// replState tracks the node's replication role for the HTTP surface. It is
// nil-tolerant: a nil state is a standalone node. The role flips once per
// process at most — replica → primary on promotion — under mu.
type replState struct {
	mu       sync.Mutex
	server   *repl.Server      // set on a replicating primary
	follower *repl.Follower    // set on a replica
	promoted *pskyline.Monitor // set when a replica is promoted
}

func (rs *replState) setServer(s *repl.Server) {
	rs.mu.Lock()
	rs.server = s
	rs.mu.Unlock()
}

func (rs *replState) setFollower(f *repl.Follower) {
	rs.mu.Lock()
	rs.follower = f
	rs.mu.Unlock()
}

// role is "standalone", "primary" (replicating, or promoted) or "replica".
func (rs *replState) role() string {
	if rs == nil {
		return "standalone"
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	switch {
	case rs.promoted != nil, rs.server != nil:
		return "primary"
	case rs.follower != nil:
		return "replica"
	default:
		return "standalone"
	}
}

// decorateHealth adds the node role — and, per role, the replication lag
// block — to a /healthz body.
func (rs *replState) decorateHealth(body map[string]any) {
	body["role"] = rs.role()
	if rs == nil {
		return
	}
	rs.mu.Lock()
	s, f, promoted := rs.server, rs.follower, rs.promoted != nil
	rs.mu.Unlock()
	if s != nil {
		body["replication"] = s.Status()
	} else if f != nil && !promoted {
		body["replication"] = f.Info()
	}
}

// writePrometheus appends the role's replication series after the
// operator's own metrics.
func (rs *replState) writePrometheus(w io.Writer) {
	if rs == nil {
		return
	}
	rs.mu.Lock()
	s, f, promoted := rs.server, rs.follower, rs.promoted != nil
	rs.mu.Unlock()
	if s != nil {
		s.WritePrometheus(w)
	} else if f != nil && !promoted {
		f.WritePrometheus(w)
	}
}

// promote flips a replica to primary: the follower seals the stream and
// bumps the fencing epoch, and the node starts accepting writes.
func (rs *replState) promote(h *monitorHandle) (map[string]any, int) {
	if rs == nil {
		return map[string]any{"error": "not a replica"}, http.StatusConflict
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.follower == nil {
		return map[string]any{"error": "not a replica"}, http.StatusConflict
	}
	if rs.promoted != nil { // idempotent: repeating the ack is harmless
		return map[string]any{"status": "primary", "epoch": rs.follower.Epoch(),
			"seq": rs.promoted.NextSeq()}, http.StatusOK
	}
	mon, err := rs.follower.Promote()
	if err != nil {
		return map[string]any{"error": err.Error()}, http.StatusInternalServerError
	}
	rs.promoted = mon
	h.set(mon)
	return map[string]any{"status": "primary", "epoch": rs.follower.Epoch(),
		"seq": mon.NextSeq()}, http.StatusOK
}

// runReplica runs the process as a read-only replica of a primary: the
// durable monitor is recovered from -wal, then kept in sync from the
// primary's replication listener; /skyline, /metrics and /healthz serve the
// replica's lock-free view while POST /push answers 403. POST /promote (or
// `pskyline -promote URL`) seals the stream and flips the node writable;
// the process then keeps serving as a primary until SIGINT/SIGTERM.
func runReplica(cfg config, errw io.Writer) error {
	if cfg.walDir == "" {
		return fmt.Errorf("-replica-of requires -wal: the WAL is the replication log")
	}
	if cfg.httpAddr == "" {
		return fmt.Errorf("-replica-of requires -http: replicas are queried over HTTP")
	}
	if cfg.replListen != "" {
		return fmt.Errorf("-replica-of and -replicate-listen are mutually exclusive")
	}
	if cfg.streams != "" || cfg.ckpt != "" {
		return fmt.Errorf("-replica-of composes only with -wal and -http")
	}
	if cfg.shards > 1 {
		return fmt.Errorf("-replica-of replicates a single-engine stream: -shards must be 1")
	}
	opt := pskyline.Options{Dims: cfg.dims, Thresholds: cfg.thresholds}
	opt.Latency = pskyline.LatencyOptions{
		Disable:       cfg.noLatency,
		Epoch:         cfg.latencyEpoch,
		SlowThreshold: cfg.slowThreshold,
	}
	if cfg.period > 0 {
		opt.Period = cfg.period
	} else {
		opt.Window = cfg.window
	}
	prog := &pskyline.RecoveryProgress{}
	opt.Durability = pskyline.Durability{
		Dir:             cfg.walDir,
		Fsync:           cfg.walFsync,
		Policy:          cfg.walPolicy,
		SegmentBytes:    int64(cfg.walSegmentMB) << 20,
		CheckpointEvery: cfg.walCkptEvery,
		InjectFaults:    cfg.walFault,
		FaultSeed:       cfg.walFaultSeed,
		Progress:        prog,
	}

	// The HTTP server comes up before the local recovery so probes see 503
	// "recovering" (with replay progress) instead of connection refused.
	h := newMonitorHandle(nil)
	h.progress = prog
	rs := &replState{}
	srv, err := startServer(cfg.httpAddr, newServeMux(h, rs), errw)
	if err != nil {
		return err
	}
	defer srv.Close()

	inj, err := parseReplFault(cfg)
	if err != nil {
		return err
	}
	f, err := repl.StartFollower(opt, repl.FollowerOptions{
		Addr:  cfg.replicaOf,
		Fault: inj,
		// Checkpoint catch-up rebuilds the monitor; swap the serving handle.
		OnMonitor: func(m *pskyline.Monitor) { h.set(m) },
	})
	if err != nil {
		return err
	}
	if rec := f.Monitor().Recovery(); rec.Recovered {
		fmt.Fprintf(errw, "pskyline: recovered from %s: checkpoint seq %d + %d replayed records in %v\n",
			cfg.walDir, rec.CheckpointSeq, rec.Replayed, rec.Duration.Round(time.Millisecond))
	}
	rs.setFollower(f)
	h.set(f.Monitor())
	fmt.Fprintf(errw, "pskyline: replica of %s at seq %d (epoch %d), serving on %s (interrupt to exit)\n",
		cfg.replicaOf, f.Monitor().NextSeq(), f.Epoch(), cfg.httpAddr)

	awaitStop(cfg.stop)
	shutdownServer(srv, errw)

	rs.mu.Lock()
	promoted := rs.promoted
	rs.mu.Unlock()
	if promoted != nil {
		// The node became a primary: exit like one — drain, checkpoint,
		// close. The follower's Close leaves the transferred monitor alone.
		f.Close()
		promoted.Drain()
		if err := promoted.Checkpoint(); err != nil {
			fmt.Fprintf(errw, "pskyline: checkpoint: %v\n", err)
		} else {
			fmt.Fprintf(errw, "pskyline: checkpoint installed in %s at seq %d\n",
				cfg.walDir, promoted.NextSeq())
		}
		return promoted.Close()
	}
	return f.Close()
}

// runPromote is the -promote client: POST /promote on a replica's HTTP
// address and report the outcome.
func runPromote(target string, out io.Writer) error {
	base := strings.TrimRight(target, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Post(base+"/promote", "application/json", nil)
	if err != nil {
		return fmt.Errorf("promote %s: %v", target, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("promote %s: status %d: %s", target, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var ack struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
		Seq    uint64 `json:"seq"`
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		return fmt.Errorf("promote %s: bad response %q: %v", target, body, err)
	}
	fmt.Fprintf(out, "promoted: role=%s epoch=%d seq=%d\n", ack.Status, ack.Epoch, ack.Seq)
	return nil
}
