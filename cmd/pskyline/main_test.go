package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	el, err := parseLine("1.5,2.5,0.8", 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.Point[0] != 1.5 || el.Point[1] != 2.5 || el.Prob != 0.8 || el.TS != 0 {
		t.Fatalf("parsed %+v", el)
	}

	el, err = parseLine(" 1 , 2 , 0.5 , 42 ", 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.TS != 42 {
		t.Fatalf("ts = %d", el.TS)
	}

	for _, bad := range []string{
		"1,2",          // too few fields
		"1,2,3,4,5",    // too many
		"x,2,0.5",      // bad coordinate
		"1,2,p",        // bad probability
		"1,2,0.5,nope", // bad timestamp
	} {
		if _, err := parseLine(bad, 2); err == nil {
			t.Errorf("parseLine(%q) accepted", bad)
		}
	}
}

// genCSV produces n deterministic "x,y,p" lines for a 2-d stream.
func genCSV(seed int64, n int) []string {
	r := rand.New(rand.NewSource(seed))
	lines := make([]string, n)
	for i := range lines {
		// Keep the probability ≥ 0.0001 so %.4f cannot round it to 0.
		lines[i] = fmt.Sprintf("%.6f,%.6f,%.4f", r.Float64(), r.Float64(), 0.0001+0.9999*r.Float64())
	}
	return lines
}

// runSession drives run() over the given input lines and returns stdout.
func runSession(t *testing.T, cfg config, lines []string) string {
	t.Helper()
	var out, errw bytes.Buffer
	in := strings.NewReader(strings.Join(lines, "\n") + "\n")
	if err := run(cfg, in, &out, &errw); err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errw.String())
	}
	return out.String()
}

// eventLines filters the enter/leave event output, dropping per-session
// statistics.
func eventLines(out string) []string {
	var ev []string
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "+") || strings.HasPrefix(l, "-") {
			ev = append(ev, l)
		}
	}
	return ev
}

// finalSizes extracts the "now" candidate/skyline counts from the stats
// footer (the per-session max counts legitimately differ across restarts).
func finalSizes(t *testing.T, out string) (cand, sky int) {
	t.Helper()
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "candidates: now ") {
			if _, err := fmt.Sscanf(l, "candidates: now %d, max %d; skyline: now %d,", &cand, new(int), &sky); err != nil {
				t.Fatalf("parse stats %q: %v", l, err)
			}
			return cand, sky
		}
	}
	t.Fatalf("no stats footer in output:\n%s", out)
	return 0, 0
}

// TestRunCheckpointRoundTrip proves that interrupting a session with a
// checkpoint and resuming it — with different batching and async settings —
// produces exactly the same event stream and final skyline state as one
// uninterrupted run.
func TestRunCheckpointRoundTrip(t *testing.T) {
	const n = 1200
	lines := genCSV(3, n)
	base := config{dims: 2, window: 300, thresholds: []float64{0.3}, batch: 1}

	full := runSession(t, base, lines)

	ck := filepath.Join(t.TempDir(), "ck.gob")
	first := base
	first.ckpt = ck
	out1 := runSession(t, first, lines[:n/2])

	second := base
	second.ckpt = ck
	second.batch = 7
	second.async = 16
	out2 := runSession(t, second, lines[n/2:])

	want := eventLines(full)
	got := append(eventLines(out1), eventLines(out2)...)
	if len(want) != len(got) {
		t.Fatalf("event count: uninterrupted %d, resumed %d", len(want), len(got))
	}
	// A restore bulk-reloads the R-trees, so events triggered by one push can
	// be discovered in a different tree-traversal order; the set of events —
	// which elements enter and leave the skyline — must be identical.
	sort.Strings(want)
	sort.Strings(got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("event %d differs:\nuninterrupted: %s\nresumed:       %s", i, want[i], got[i])
		}
	}
	wc, ws := finalSizes(t, full)
	gc, gs := finalSizes(t, out2)
	if wc != gc || ws != gs {
		t.Fatalf("final sizes: uninterrupted cand=%d sky=%d, resumed cand=%d sky=%d", wc, ws, gc, gs)
	}
}

// TestRunSnapshotModeAsync checks snapshot-mode output with batched + async
// ingestion: every snapshot is printed after a Drain, so the reported stream
// position must be exact.
func TestRunSnapshotModeAsync(t *testing.T) {
	const n = 600
	lines := genCSV(5, n)
	cfg := config{
		dims: 2, window: 200, thresholds: []float64{0.3},
		snapshot: 150, batch: 4, async: 32, summary: false,
	}
	out := runSession(t, cfg, lines)
	var positions []int
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "@") {
			var at, sz int
			if _, err := fmt.Sscanf(l, "@%d skyline (%d points):", &at, &sz); err != nil {
				t.Fatalf("parse snapshot header %q: %v", l, err)
			}
			positions = append(positions, at)
		}
	}
	want := []int{150, 300, 450, 600}
	if len(positions) != len(want) {
		t.Fatalf("snapshot positions %v, want %v", positions, want)
	}
	for i := range want {
		if positions[i] != want[i] {
			t.Fatalf("snapshot positions %v, want %v", positions, want)
		}
	}
}

// TestRunRejectsBadBatch covers run()'s own validation.
func TestRunRejectsBadBatch(t *testing.T) {
	err := run(config{dims: 2, window: 10, thresholds: []float64{0.3}, batch: 0},
		strings.NewReader(""), new(bytes.Buffer), new(bytes.Buffer))
	if err == nil {
		t.Fatal("batch=0 accepted")
	}
}
