package main

import "testing"

func TestParseLine(t *testing.T) {
	el, err := parseLine("1.5,2.5,0.8", 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.Point[0] != 1.5 || el.Point[1] != 2.5 || el.Prob != 0.8 || el.TS != 0 {
		t.Fatalf("parsed %+v", el)
	}

	el, err = parseLine(" 1 , 2 , 0.5 , 42 ", 2)
	if err != nil {
		t.Fatal(err)
	}
	if el.TS != 42 {
		t.Fatalf("ts = %d", el.TS)
	}

	for _, bad := range []string{
		"1,2",          // too few fields
		"1,2,3,4,5",    // too many
		"x,2,0.5",      // bad coordinate
		"1,2,p",        // bad probability
		"1,2,0.5,nope", // bad timestamp
	} {
		if _, err := parseLine(bad, 2); err == nil {
			t.Errorf("parseLine(%q) accepted", bad)
		}
	}
}
