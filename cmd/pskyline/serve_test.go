package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pskyline"
)

// syncBuf is a bytes.Buffer safe to poll while run() writes it.
type syncBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// serveMonitor builds a monitor with some churn behind the observability mux.
func serveMonitor(t *testing.T) *pskyline.Monitor {
	t.Helper()
	m, err := pskyline.NewMonitor(pskyline.Options{
		Dims: 2, Window: 200, Thresholds: []float64{0.3}, TraceDepth: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	for _, l := range genCSV(11, 800) {
		el, err := parseLine(l, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Push(el); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func get(t *testing.T, srv *httptest.Server, path string) (string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return string(body), resp.Header
}

func TestServeMuxEndpoints(t *testing.T) {
	m := serveMonitor(t)
	srv := httptest.NewServer(newServeMux(newMonitorHandle(m), nil))
	defer srv.Close()

	metrics, hdr := get(t, srv, "/metrics")
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		"pskyline_pushes_total 800",
		`pskyline_stage_seconds_bucket{stage="probe",le="+Inf"}`,
		"pskyline_skyline_enters_total",
		"pskyline_theory_skyline_bound",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	health, _ := get(t, srv, "/healthz")
	var h map[string]any
	if err := json.Unmarshal([]byte(health), &h); err != nil {
		t.Fatalf("/healthz invalid JSON: %v", err)
	}
	if h["status"] != "serving" || h["processed"].(float64) != 800 {
		t.Errorf("/healthz = %v", h)
	}

	dbg, _ := get(t, srv, "/debug/skyline")
	var d struct {
		Processed  uint64           `json:"processed"`
		Thresholds []float64        `json:"thresholds"`
		Skyline    []skyPointJSON   `json:"skyline"`
		Trace      []traceEventJSON `json:"trace"`
	}
	if err := json.Unmarshal([]byte(dbg), &d); err != nil {
		t.Fatalf("/debug/skyline invalid JSON: %v", err)
	}
	if d.Processed != 800 || len(d.Skyline) == 0 || len(d.Trace) == 0 {
		t.Errorf("/debug/skyline = processed %d, %d skyline, %d trace",
			d.Processed, len(d.Skyline), len(d.Trace))
	}
	if len(d.Skyline) != m.Stats().Skyline {
		t.Errorf("/debug/skyline reports %d points, Stats says %d", len(d.Skyline), m.Stats().Skyline)
	}

	vars, _ := get(t, srv, "/debug/vars")
	var v map[string]any
	if err := json.Unmarshal([]byte(vars), &v); err != nil {
		t.Fatalf("/debug/vars invalid JSON: %v", err)
	}
	if v["pskyline_pushes_total"].(float64) != 800 {
		t.Errorf("/debug/vars pushes = %v", v["pskyline_pushes_total"])
	}

	if idx, _ := get(t, srv, "/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Error("/debug/pprof/ index does not list profiles")
	}
	if prof, _ := get(t, srv, "/debug/pprof/goroutine?debug=1"); !strings.Contains(prof, "goroutine") {
		t.Error("/debug/pprof/goroutine empty")
	}
}

// TestServeMuxRecovering verifies the pre-recovery state: with no monitor in
// the handle yet, every data endpoint answers 503 {"status":"recovering"},
// and flipping the handle to a live monitor switches /healthz to "serving".
func TestServeMuxRecovering(t *testing.T) {
	h := newMonitorHandle(nil)
	srv := httptest.NewServer(newServeMux(h, nil))
	defer srv.Close()

	for _, path := range []string{"/healthz", "/metrics", "/debug/skyline", "/debug/vars"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s while recovering: status %d, want 503", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), `"recovering"`) {
			t.Errorf("GET %s while recovering: body %q", path, body)
		}
	}

	h.set(serveMonitor(t))
	health, _ := get(t, srv, "/healthz")
	var hm map[string]any
	if err := json.Unmarshal([]byte(health), &hm); err != nil {
		t.Fatalf("/healthz invalid JSON: %v", err)
	}
	if hm["status"] != "serving" {
		t.Errorf("/healthz after recovery = %v", hm)
	}
}

// TestServeMuxRecoveringProgress verifies the 503 "recovering" body carries
// live replay progress when the handle has a RecoveryProgress attached: a
// durable directory is built with a WAL tail, reopened with the progress
// hook, and the counters the endpoint reports must match what recovery
// actually replayed.
func TestServeMuxRecoveringProgress(t *testing.T) {
	dir := t.TempDir()
	opt := pskyline.Options{
		Dims: 2, Window: 200, Thresholds: []float64{0.3},
		Durability: pskyline.Durability{Dir: dir, Fsync: "never", CheckpointEvery: -1},
	}
	m, err := pskyline.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for _, l := range genCSV(13, n) {
		el, err := parseLine(l, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Push(el); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(); err != nil { // Close flushes the WAL; no checkpoint is installed
		t.Fatal(err)
	}

	prog := &pskyline.RecoveryProgress{}
	opt.Durability.Progress = prog
	m2, err := pskyline.Open(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	rec := m2.Recovery()
	if rec.Replayed != n {
		t.Fatalf("recovery replayed %d records, want %d", rec.Replayed, n)
	}
	if got := prog.RecordsReplayed(); got != n {
		t.Fatalf("progress reports %d records replayed, want %d", got, n)
	}
	if prog.SegmentsTotal() == 0 || prog.SegmentsDecoded() != prog.SegmentsTotal() {
		t.Fatalf("progress segments %d/%d after recovery", prog.SegmentsDecoded(), prog.SegmentsTotal())
	}

	h := newMonitorHandle(nil) // still "recovering": no operator stored yet
	h.progress = prog
	srv := httptest.NewServer(newServeMux(h, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while recovering: status %d, want 503", resp.StatusCode)
	}
	var hm map[string]any
	if err := json.Unmarshal(body, &hm); err != nil {
		t.Fatalf("/healthz invalid JSON: %v (%q)", err, body)
	}
	if hm["status"] != "recovering" {
		t.Fatalf("/healthz status = %v, want recovering", hm["status"])
	}
	if got := hm["records_replayed"]; got != float64(n) {
		t.Fatalf("/healthz records_replayed = %v, want %d (body %s)", got, n, body)
	}
	if hm["segments_total"] == nil || hm["segments_decoded"] == nil {
		t.Fatalf("/healthz missing segment progress fields: %s", body)
	}
}

// TestRunServeMode drives run() with -http against a live TCP port: the
// endpoints must respond while the process lingers after EOF, and closing
// the stop channel must let run return.
func TestRunServeMode(t *testing.T) {
	stop := make(chan struct{})
	cfg := config{
		dims: 2, window: 100, thresholds: []float64{0.3},
		batch: 1, summary: true, httpAddr: "127.0.0.1:0", stop: stop,
	}
	var out bytes.Buffer
	var errw syncBuf
	done := make(chan error, 1)
	go func() {
		in := strings.NewReader(strings.Join(genCSV(7, 300), "\n") + "\n")
		done <- run(cfg, in, &out, &errw)
	}()

	// The bound address is announced on stderr once the server is up.
	var addr string
	for i := 0; i < 400; i++ {
		if s := errw.String(); strings.Contains(s, "http://") {
			at := strings.Index(s, "http://")
			addr = strings.TrimSpace(strings.SplitN(s[at:], "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never announced itself; stderr: %s", errw.String())
	}

	// Wait until the stream has fully drained, then scrape.
	for i := 0; i < 400; i++ {
		if strings.Contains(errw.String(), "stream done") {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Get(addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "pskyline_pushes_total 300") {
		t.Errorf("/metrics after EOF missing final push count:\n%.400s", body)
	}

	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "work: nodes=") || !strings.Contains(out.String(), "stage probe") {
		t.Errorf("-summary missing work/stage block:\n%s", out.String())
	}
}

// TestRunServeShutdownInflight: the serve-mode shutdown is graceful — a
// request already being handled when the stop signal arrives completes
// normally (run blocks in Shutdown until it drains) instead of being cut
// mid-response.
func TestRunServeShutdownInflight(t *testing.T) {
	stop := make(chan struct{})
	cfg := config{
		dims: 2, window: 100, thresholds: []float64{0.3},
		batch: 1, httpAddr: "127.0.0.1:0", stop: stop,
	}
	var out bytes.Buffer
	var errw syncBuf
	done := make(chan error, 1)
	go func() {
		in := strings.NewReader(strings.Join(genCSV(7, 100), "\n") + "\n")
		done <- run(cfg, in, &out, &errw)
	}()

	var addr string
	for i := 0; i < 400; i++ {
		if s := errw.String(); strings.Contains(s, "stream done") {
			at := strings.Index(s, "http://")
			addr = strings.TrimSpace(strings.SplitN(s[at:], "\n", 2)[0])
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatalf("server never reached serve mode; stderr: %s", errw.String())
	}

	// A 2-second CPU profile capture only answers after profiling finishes,
	// so it is in flight across the whole shutdown window.
	type result struct {
		status int
		n      int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(addr + "/debug/pprof/profile?seconds=2")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			inflight <- result{err: rerr}
			return
		}
		inflight <- result{status: resp.StatusCode, n: len(body)}
	}()

	// Give the request time to reach the handler, then pull the plug.
	time.Sleep(300 * time.Millisecond)
	stopAt := time.Now()
	close(stop)

	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	shutdownTook := time.Since(stopAt)
	r := <-inflight
	if r.err != nil {
		t.Fatalf("in-flight request cut by shutdown: %v", r.err)
	}
	if r.status != http.StatusOK || r.n == 0 {
		t.Fatalf("in-flight request got status %d, %d bytes", r.status, r.n)
	}
	// Shutdown must actually have waited for the ~2s capture rather than
	// returning instantly and racing the hard Close.
	if shutdownTook < time.Second {
		t.Fatalf("run returned %v after stop — did not wait for the in-flight request", shutdownTook)
	}
}
