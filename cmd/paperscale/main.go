// Command paperscale runs the headline anti-correlated 3d configuration at
// the paper's full scale (n = 2M, N = 1M): SSKY vs the trivial algorithm,
// plus the space numbers. It exists so EXPERIMENTS.md can anchor the
// reduced-scale sweeps against one full-scale measurement.
package main

import (
	"fmt"
	"os"

	"pskyline/internal/bench"
	"pskyline/internal/streamgen"
)

func main() {
	ds := bench.Dataset{Name: "Anti-Uniform", Dims: 3, Dist: streamgen.Anticorrelated, Prob: streamgen.UniformProb{}}
	cfg := bench.Config{Dataset: ds, N: 2_000_000, Window: 1_000_000, Thresholds: []float64{0.3}, Seed: 1}
	ssky := bench.Run(cfg)
	fmt.Fprintf(os.Stdout, "paper-scale anti 3d, n=2M, N=1M, q=0.3\n")
	fmt.Fprintf(os.Stdout, "SSKY:    %.2f us/elem (%.0f elems/sec), p50=%.2f p99=%.2f, max|S|=%d max|SKY|=%d\n",
		ssky.NsPerElem/1e3, ssky.ElemsPerSec, ssky.P50NsPerElem/1e3, ssky.P99NsPerElem/1e3, ssky.MaxCand, ssky.MaxSky)
	c := ssky.Counters
	fmt.Fprintf(os.Stdout, "visits:  %.1f nodes/elem, %.1f items/elem\n",
		float64(c.NodesVisited)/float64(c.Pushes), float64(c.ItemsTouched)/float64(c.Pushes))
	triv := bench.RunTrivial(cfg)
	fmt.Fprintf(os.Stdout, "trivial: %.2f us/elem (%.0f elems/sec)\n", triv.NsPerElem/1e3, triv.ElemsPerSec)
	fmt.Fprintf(os.Stdout, "speedup: %.1fx\n", triv.NsPerElem/ssky.NsPerElem)
}
