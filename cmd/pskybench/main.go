// Command pskybench regenerates the experiments of the paper's evaluation
// section (Figures 4–12). Each figure prints the same series the paper
// plots; the default scale (n=200K, N=100K) finishes in minutes, and
// -paper-scale runs the paper's n=2M, N=1M.
//
// Usage:
//
//	pskybench -exp all
//	pskybench -exp fig4,fig8
//	pskybench -exp fig5 -n 400000 -w 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pskyline/internal/bench"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "comma-separated experiments: all, fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12a, fig12b")
		n          = flag.Int("n", bench.DefaultScale.N, "stream length")
		w          = flag.Int("w", bench.DefaultScale.Window, "sliding window size")
		paperScale = flag.Bool("paper-scale", false, "use the paper's n=2M, N=1M (slow)")

		ingest       = flag.Bool("ingest", false, "run the ingestion benchmark harness instead of the figure experiments")
		ingestOut    = flag.String("out", "BENCH_ingest.json", "trajectory file the -ingest run is appended to")
		ingestLabel  = flag.String("label", "local", "label naming the -ingest run in the trajectory file")
		ingestWindow = flag.Int("ingest-window", 0, "sliding window of the -ingest workloads (0 = default 10000)")
		ingestShort  = flag.Bool("ingest-short", false, "shrink the -ingest workloads for smoke runs")
		recoverOnly  = flag.Bool("ingest-recover-only", false, "run only the recovery-reopen workloads (the bench-recovery smoke)")
		replOnly     = flag.Bool("ingest-repl-only", false, "run only the replication push workloads (semi-sync vs async A/B)")
	)
	flag.Parse()

	if *ingest {
		fmt.Printf("pskybench: ingestion workloads (label %q)\n", *ingestLabel)
		run := bench.Ingest(bench.IngestConfig{
			Window:      *ingestWindow,
			Short:       *ingestShort,
			Label:       *ingestLabel,
			RecoverOnly: *recoverOnly,
			ReplOnly:    *replOnly,
		}, os.Stdout)
		if err := bench.WriteIngest(*ingestOut, run); err != nil {
			fmt.Fprintln(os.Stderr, "pskybench:", err)
			os.Exit(1)
		}
		fmt.Printf("pskybench: appended run %q to %s\n", run.Label, *ingestOut)
		return
	}

	scale := bench.Scale{N: *n, Window: *w}
	if *paperScale {
		scale = bench.PaperScale
	}
	if scale.Window > scale.N {
		fmt.Fprintln(os.Stderr, "pskybench: window larger than stream length")
		os.Exit(2)
	}

	run := map[string]func(){
		"fig4":     func() { bench.Fig4(scale, os.Stdout) },
		"fig5":     func() { bench.Fig5(scale, os.Stdout) },
		"fig6":     func() { bench.Fig6(scale, os.Stdout) },
		"fig7":     func() { bench.Fig7(scale, os.Stdout) },
		"fig8":     func() { bench.Fig8(scale, os.Stdout) },
		"fig9":     func() { bench.Fig9(scale, os.Stdout) },
		"fig10":    func() { bench.Fig10(scale, os.Stdout) },
		"fig11":    func() { bench.Fig11(scale, os.Stdout) },
		"fig12a":   func() { bench.Fig12a(scale, os.Stdout) },
		"fig12b":   func() { bench.Fig12b(scale, os.Stdout) },
		"counters": func() { bench.Counters(scale, os.Stdout) },
	}

	fmt.Printf("pskybench: n=%d window=%d\n", scale.N, scale.Window)
	if *exp == "all" {
		bench.All(scale, os.Stdout)
		return
	}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(strings.ToLower(name))
		f, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "pskybench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		f()
	}
}
