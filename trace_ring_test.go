package pskyline

import (
	"sync"
	"sync/atomic"
	"testing"

	"pskyline/internal/obs"
)

// traceEventOf derives every field of record k from k alone, so a reader can
// verify a collected event's internal consistency from its Seq: any mixture
// of two generations that slipped through the seqlock shows up as a field
// that disagrees with the derivation.
func traceRecordArgs(k uint64) (seq, processed uint64, atNs int64, prob, psky float64, from, to int, pt []float64) {
	seq = k
	processed = 3*k + 1
	atNs = int64(5*k + 7)
	prob = float64(k%97+1) / 100
	psky = float64(k%89+1) / 200
	from = int(k%5) - 1
	to = int(k%4) - 1
	pt = []float64{float64(k), float64(k + 1), float64(k + 2)}
	return
}

func checkTraceEvent(t *testing.T, ev TraceEvent) {
	t.Helper()
	k := ev.Seq
	_, processed, atNs, prob, psky, from, to, pt := traceRecordArgs(k)
	if ev.Processed != processed {
		t.Fatalf("torn record %d: Processed = %d, want %d", k, ev.Processed, processed)
	}
	if !ev.At.Equal(obs.WallAt(atNs)) {
		t.Fatalf("torn record %d: At = %v, want %v", k, ev.At, obs.WallAt(atNs))
	}
	if ev.Prob != prob || ev.Psky != psky {
		t.Fatalf("torn record %d: Prob/Psky = %v/%v, want %v/%v", k, ev.Prob, ev.Psky, prob, psky)
	}
	if ev.FromBand != from || ev.ToBand != to {
		t.Fatalf("torn record %d: bands = %d→%d, want %d→%d", k, ev.FromBand, ev.ToBand, from, to)
	}
	if ev.Entered != (to == 0) {
		t.Fatalf("torn record %d: Entered = %v with ToBand %d", k, ev.Entered, ev.ToBand)
	}
	if len(ev.Point) != len(pt) {
		t.Fatalf("torn record %d: %d coordinates, want %d", k, len(ev.Point), len(pt))
	}
	for i := range pt {
		if ev.Point[i] != pt[i] {
			t.Fatalf("torn record %d: Point[%d] = %v, want %v", k, i, ev.Point[i], pt[i])
		}
	}
}

// TestTraceRingWrapTornReads hammers a tiny trace ring with a fast writer
// while concurrent readers collect continuously: every record the readers
// accept must be internally consistent (all fields from one write), even
// though the writer laps the ring thousands of times mid-collect. Run under
// -race this also certifies the seqlock's atomics are data-race free.
func TestTraceRingWrapTornReads(t *testing.T) {
	const depth = 4
	const writes = 200_000
	r := newTraceRing(depth)

	var stop atomic.Bool
	var wg sync.WaitGroup
	var collected atomic.Uint64
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				for _, ev := range r.collect() {
					checkTraceEvent(t, ev)
					collected.Add(1)
				}
			}
		}()
	}

	for k := uint64(0); k < writes; k++ {
		seq, processed, atNs, prob, psky, from, to, pt := traceRecordArgs(k)
		r.record(seq, processed, atNs, prob, psky, from, to, pt)
	}
	stop.Store(true)
	wg.Wait()
	if collected.Load() == 0 {
		t.Fatal("readers accepted no records at all")
	}

	// Quiescent: collect returns exactly the last `depth` records, in order.
	evs := r.collect()
	if len(evs) != depth {
		t.Fatalf("quiescent collect returned %d records, want %d", len(evs), depth)
	}
	for i, ev := range evs {
		want := uint64(writes - depth + i)
		if ev.Seq != want {
			t.Fatalf("quiescent record %d: Seq = %d, want %d", i, ev.Seq, want)
		}
		checkTraceEvent(t, ev)
	}
}
