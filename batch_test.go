package pskyline_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pskyline"
	"pskyline/internal/geom"
	"pskyline/internal/naive"
)

// genElements produces a deterministic pseudo-random stream. With anti set,
// points concentrate around the anti-correlated diagonal so skylines stay
// large and band churn is high.
func genElements(seed int64, n, dims int, anti bool) []pskyline.Element {
	r := rand.New(rand.NewSource(seed))
	out := make([]pskyline.Element, n)
	for i := range out {
		pt := make([]float64, dims)
		s := 0.0
		for d := range pt {
			pt[d] = r.Float64()
			s += pt[d]
		}
		if anti {
			shift := (float64(dims)/2 - s) / float64(dims) * 0.8
			for d := range pt {
				pt[d] += shift
			}
		}
		out[i] = pskyline.Element{
			Point: pt,
			Prob:  1 - r.Float64(), // (0, 1]
			TS:    int64(i),
			Data:  i,
		}
	}
	return out
}

// sameView asserts that two published views are byte-identical: same stream
// position, same thresholds, same band partition and the same candidates
// with bit-for-bit equal floating point values. This is the guarantee that
// batched and async ingestion are pure re-groupings of sequential Push.
func sameView(t *testing.T, label string, want, got *pskyline.View) {
	t.Helper()
	if want.Processed() != got.Processed() {
		t.Fatalf("%s: processed %d != %d", label, got.Processed(), want.Processed())
	}
	wt, gt := want.Thresholds(), got.Thresholds()
	if len(wt) != len(gt) {
		t.Fatalf("%s: threshold count %d != %d", label, len(gt), len(wt))
	}
	for i := range wt {
		if wt[i] != gt[i] {
			t.Fatalf("%s: threshold %d: %v != %v", label, i, gt[i], wt[i])
		}
	}
	wb, gb := want.BandSizes(), got.BandSizes()
	for i := range wb {
		if wb[i] != gb[i] {
			t.Fatalf("%s: band %d size %d != %d (bands want=%v got=%v)", label, i, gb[i], wb[i], wb, gb)
		}
	}
	wc, gc := want.Candidates(), got.Candidates()
	if len(wc) != len(gc) {
		t.Fatalf("%s: candidate count %d != %d", label, len(gc), len(wc))
	}
	for i := range wc {
		w, g := wc[i], gc[i]
		if w.Seq != g.Seq || w.TS != g.TS ||
			math.Float64bits(w.Prob) != math.Float64bits(g.Prob) ||
			math.Float64bits(w.Psky) != math.Float64bits(g.Psky) {
			t.Fatalf("%s: candidate %d differs:\nwant %+v\ngot  %+v", label, i, w, g)
		}
		if len(w.Point) != len(g.Point) {
			t.Fatalf("%s: candidate %d point dims differ", label, i)
		}
		for d := range w.Point {
			if math.Float64bits(w.Point[d]) != math.Float64bits(g.Point[d]) {
				t.Fatalf("%s: candidate %d point[%d] %v != %v", label, i, d, g.Point[d], w.Point[d])
			}
		}
		if w.Data != g.Data {
			t.Fatalf("%s: candidate %d data %v != %v", label, i, g.Data, w.Data)
		}
	}
}

// TestPushBatchDifferential proves that the same stream produces
// byte-identical final skyline state whether it is ingested element-wise
// with Push, in random-size PushBatch chunks, or through the bounded async
// queue — and that the final state agrees with the exact full-window oracle.
func TestPushBatchDifferential(t *testing.T) {
	const (
		dims   = 3
		window = 400
		n      = 2500
	)
	thresholds := []float64{0.5, 0.3}
	stream := genElements(11, n, dims, true)

	opt := pskyline.Options{Dims: dims, Window: window, Thresholds: thresholds}

	// (a) Sequential element-wise Push: the reference.
	seq := mustMonitor(t, opt)
	for i, e := range stream {
		s, err := seq.Push(e)
		if err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
		if s != uint64(i) {
			t.Fatalf("push %d: got seq %d", i, s)
		}
	}

	// (b) PushBatch in random-size chunks.
	batched := mustMonitor(t, opt)
	r := rand.New(rand.NewSource(23))
	for i := 0; i < n; {
		sz := 1 + r.Intn(97)
		if i+sz > n {
			sz = n - i
		}
		first, err := batched.PushBatch(stream[i : i+sz])
		if err != nil {
			t.Fatalf("batch at %d: %v", i, err)
		}
		if first != uint64(i) {
			t.Fatalf("batch at %d: got first seq %d", i, first)
		}
		i += sz
	}

	// (c) Async queue, mixing Push and PushBatch, drained at the end.
	async := mustMonitor(t, pskyline.Options{
		Dims: dims, Window: window, Thresholds: thresholds, AsyncQueue: 64,
	})
	for i := 0; i < n; {
		if r.Intn(2) == 0 {
			s, err := async.Push(stream[i])
			if err != nil {
				t.Fatalf("async push %d: %v", i, err)
			}
			if s != uint64(i) {
				t.Fatalf("async push %d: got seq %d", i, s)
			}
			i++
			continue
		}
		sz := 1 + r.Intn(97)
		if i+sz > n {
			sz = n - i
		}
		first, err := async.PushBatch(stream[i : i+sz])
		if err != nil {
			t.Fatalf("async batch at %d: %v", i, err)
		}
		if first != uint64(i) {
			t.Fatalf("async batch at %d: got first seq %d", i, first)
		}
		i += sz
	}
	async.Drain()

	want := seq.View()
	sameView(t, "batched vs sequential", want, batched.View())
	sameView(t, "async vs sequential", want, async.View())

	// After Close the queue rejects writes but the final view keeps serving.
	if err := async.Close(); err != nil {
		t.Fatal(err)
	}
	if err := async.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := async.Push(stream[0]); err != pskyline.ErrClosed {
		t.Fatalf("push after close: %v", err)
	}
	if _, err := async.PushBatch(stream[:3]); err != pskyline.ErrClosed {
		t.Fatalf("batch after close: %v", err)
	}
	sameView(t, "async after close", want, async.View())

	checkAgainstOracle(t, want, stream, window, thresholds)
}

// checkAgainstOracle validates a final view against the O(W²) full-window
// oracle: every candidate's reported skyline probability must match the
// exact restricted value the streaming algorithm maintains (Section III-A),
// and the q_1-query answer must contain exactly the oracle's unrestricted
// q_1-skyline (up to ULP-level boundary ties, tolerated at 1e-9).
func checkAgainstOracle(t *testing.T, v *pskyline.View, stream []pskyline.Element, window int, thresholds []float64) {
	t.Helper()
	exact := naive.NewExact(window)
	for _, e := range stream {
		exact.Push(geom.Point(e.Point), e.Prob)
	}
	qk := thresholds[len(thresholds)-1]
	oracle := make(map[uint64]float64) // unrestricted Psky, whole window
	for _, p := range exact.All() {
		oracle[p.Seq] = p.Psky.Float()
	}
	restricted := make(map[uint64]float64) // Psky restricted to S_{N,q_k}
	for _, p := range exact.RestrictedAll(qk) {
		restricted[p.Seq] = p.Psky.Float()
	}
	const tol = 1e-9
	feq := func(a, b float64) bool {
		return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
	}
	cands := v.Candidates()
	if len(cands) != len(restricted) {
		t.Fatalf("candidate count %d, oracle S_{N,q} size %d", len(cands), len(restricted))
	}
	for _, c := range cands {
		want, ok := restricted[c.Seq]
		if !ok {
			t.Fatalf("candidate seq %d not in the oracle candidate set", c.Seq)
		}
		if !feq(c.Psky, want) {
			t.Fatalf("candidate seq %d: psky %v, oracle %v", c.Seq, c.Psky, want)
		}
	}
	q1 := thresholds[0]
	res, err := v.Query(q1)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]bool, len(res))
	for _, p := range res {
		got[p.Seq] = true
		if o := oracle[p.Seq]; o < q1-tol {
			t.Fatalf("query(%v) reported seq %d with oracle psky %v", q1, p.Seq, o)
		}
	}
	for s, psky := range oracle {
		if psky >= q1+tol && !got[s] {
			t.Fatalf("query(%v) missed seq %d with oracle psky %v", q1, s, psky)
		}
	}
}

// TestPushBatchValidation checks that an invalid element anywhere in a batch
// fails the whole batch before anything is ingested.
func TestPushBatchValidation(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{Dims: 2, Window: 100, Thresholds: []float64{0.3}})
	good := pskyline.Element{Point: []float64{1, 2}, Prob: 0.5}
	for _, bad := range []pskyline.Element{
		{Point: []float64{1}, Prob: 0.5},     // wrong dimensionality
		{Point: []float64{1, 2}, Prob: 0},    // probability out of range
		{Point: []float64{1, 2}, Prob: 1.01}, // probability out of range
	} {
		if _, err := m.PushBatch([]pskyline.Element{good, bad}); err == nil {
			t.Fatalf("batch with %+v accepted", bad)
		}
	}
	if got := m.View().Processed(); got != 0 {
		t.Fatalf("failed batches ingested %d elements", got)
	}
	if first, err := m.PushBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch: first=%d err=%v", first, err)
	}
}

// TestAsyncSeqReservation checks that with an async queue, Push returns the
// exact sequence numbers the background goroutine later assigns.
func TestAsyncSeqReservation(t *testing.T) {
	m := mustMonitor(t, pskyline.Options{
		Dims: 2, Window: 50, Thresholds: []float64{0.3}, AsyncQueue: 8,
	})
	defer m.Close()
	stream := genElements(5, 300, 2, false)
	for i, e := range stream {
		e.Data = fmt.Sprintf("payload-%d", i)
		s, err := m.Push(e)
		if err != nil {
			t.Fatal(err)
		}
		if s != uint64(i) {
			t.Fatalf("push %d reserved seq %d", i, s)
		}
	}
	m.Drain()
	v := m.View()
	if v.Processed() != uint64(len(stream)) {
		t.Fatalf("processed %d after drain", v.Processed())
	}
	for _, c := range v.Candidates() {
		if want := fmt.Sprintf("payload-%d", c.Seq); c.Data != want {
			t.Fatalf("seq %d carries payload %v, want %s", c.Seq, c.Data, want)
		}
	}
}
