package pskyline

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"pskyline/internal/geom"
	"pskyline/internal/obs"
	"pskyline/internal/wal"
)

// shardOp is one sequenced operation applied to a shard member: either a
// pre-numbered element push, or a watermark tick (tick == true) that tells
// the shard how far the global stream has advanced — seq is then the newest
// assigned sequence number and wmTS the highest assigned timestamp — so the
// shard can expire its slice of the window even though the elements driving
// the expiry were routed elsewhere. Ticks carry no data, are idempotent and
// commute with each other; the expiry bound they establish is monotone.
type shardOp struct {
	el   Element
	seq  uint64
	tick bool
	wmTS int64
	// admitNs is the element's front-end admission stamp (obs.NowNs at the
	// moment Push/PushBatch accepted it, before sequencing, queueing or lock
	// wait), carried to the applying shard for ingest-to-visibility latency
	// recording. 0 when latency tracking is off, and always 0 on ticks.
	admitNs int64
}

// watermark publishes the sharded stream's frontier: count is the number of
// globally assigned sequence numbers (== the next unassigned one) and ts the
// highest assigned element timestamp. The front end stores both under its
// mutex at assignment time; shard consumers read them lock-free to derive
// catch-up ticks, so an async shard's expiry always reflects the latest
// assignment, not just the ops it happened to receive.
type watermark struct {
	count atomic.Uint64
	ts    atomic.Int64
}

// shardMember marks a Monitor as one shard of a ShardedMonitor and carries
// the sharding seams: the logical count window (the engine itself runs
// windowless — expiry is watermark-driven) and the owning front end's
// frontier.
type shardMember struct {
	window int        // logical count window (0 = time-based)
	wm     *watermark // the owning front end's stream frontier
	index  int        // this shard's position, labelling its flight spans
}

// pushAtLocked ingests one element at its globally assigned sequence number:
// expiry catch-up to the window implied by seq (or the element's timestamp),
// then the windowless engine push. It is the shard-member analogue of
// ingestLocked and is shared by the live path (applyOps) and recovery replay.
// Callers hold m.mu.
func (m *Monitor) pushAtLocked(seq uint64, e Element) error {
	if m.period > 0 {
		m.eng.ExpireOlderThan(e.TS - m.period)
	} else if w := uint64(m.opts.shard.window); seq >= w {
		m.eng.ExpireSeqBelow(seq - w + 1)
	}
	if e.Data != nil {
		m.data[seq] = e.Data
	}
	if _, err := m.eng.PushAt(seq, geom.Point(e.Point), e.Prob, e.TS); err != nil {
		delete(m.data, seq)
		return fmt.Errorf("pskyline: %w", err)
	}
	m.probSum += e.Prob
	m.probCount++
	if e.TS > m.lastTS {
		m.lastTS = e.TS
	}
	return nil
}

// tickLocked applies a watermark tick: expire everything that left the
// global window ending at sequence `last` (count windows) or at timestamp
// wmTS (time windows). Returns the number of expiries. Callers hold m.mu.
func (m *Monitor) tickLocked(last uint64, wmTS int64) int {
	if m.period > 0 {
		return m.eng.ExpireOlderThan(wmTS - m.period)
	}
	if w := uint64(m.opts.shard.window); last+1 > w {
		return m.eng.ExpireSeqBelow(last + 1 - w)
	}
	return 0
}

// applyOps is the shard member's write entry point: log the pushes under one
// group commit, apply every op in order, and publish one view if anything
// changed. It is the sharded counterpart of ingestBatch, called by the
// sharded front end (sync mode) and by the shard's own async consumer.
func (m *Monitor) applyOps(ops []shardOp) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if p := m.walErr.Load(); p != nil {
		return *p
	}
	var sp opSpan
	if m.latOn {
		// The span's admission stamp is the batch's oldest push (ticks carry
		// none); the queue depth is the shard's async backlog at apply entry.
		admit := int64(0)
		for i := range ops {
			if !ops[i].tick && ops[i].admitNs != 0 {
				admit = ops[i].admitNs
				break
			}
		}
		queue := -1
		if m.aq != nil {
			queue = len(m.aq.ch)
		}
		m.beginOpLocked(&sp, admit, queue)
	}
	if m.wal != nil {
		if err := m.logOpsLocked(ops); err != nil {
			return err
		}
	}
	pushes, expired := 0, 0
	firstSeq := uint64(0)
	for i := range ops {
		if ops[i].tick {
			expired += m.tickLocked(ops[i].seq, ops[i].wmTS)
			continue
		}
		if err := m.pushAtLocked(ops[i].seq, ops[i].el); err != nil {
			panic("pskyline: validated element rejected by engine: " + err.Error())
		}
		if pushes == 0 {
			firstSeq = ops[i].seq
		}
		pushes++
	}
	if pushes == 0 && expired == 0 {
		return nil
	}
	sp.applyDone()
	m.refreshTopKLocked()
	m.publishLocked()
	m.endOpLocked(&sp, firstSeq, pushes, nil, ops)
	m.maybeCheckpointLocked(pushes)
	return nil
}

// logOpsLocked appends a batch of sequenced pushes under one group commit.
// Ticks are not logged — they are derivable (recovery re-establishes the
// watermark from every shard's recovered position). Callers hold m.mu.
func (m *Monitor) logOpsLocked(ops []shardOp) error {
	logged := false
	for i := range ops {
		if ops[i].tick {
			continue
		}
		if err := m.wal.AppendElement(ops[i].seq, ops[i].el.Point, ops[i].el.Prob, ops[i].el.TS); err != nil {
			return m.walFail(err)
		}
		logged = true
	}
	if !logged {
		return nil
	}
	if err := m.wal.Commit(); err != nil {
		return m.walFail(err)
	}
	return nil
}

// replayShardLocked re-ingests one recovered log record through the exact
// live shard path (watermark expiry included), so the recovered shard state
// is byte-identical to the pre-crash state for every committed record.
func (m *Monitor) replayShardLocked(r wal.Record) error {
	return m.pushAtLocked(r.Seq, Element{Point: r.Point, Prob: r.Prob, TS: r.TS})
}

// wmOp derives this shard's catch-up tick from the owning front end's
// current frontier. Reports false before anything was assigned.
func (m *Monitor) wmOp() (shardOp, bool) {
	wm := m.opts.shard.wm
	n := wm.count.Load()
	if n == 0 {
		return shardOp{}, false
	}
	return shardOp{tick: true, seq: n - 1, wmTS: wm.ts.Load()}, true
}

// applyWatermark expires this shard up to the current global frontier and
// publishes if anything left the window. Used by the async consumer on
// Drain so an idle shard still converges with its siblings.
func (m *Monitor) applyWatermark() {
	if op, ok := m.wmOp(); ok {
		_ = m.applyOps([]shardOp{op})
	}
}

// ShardedOptions configures NewSharded: the embedded Options apply to every
// shard (Durability.Dir becomes the root of per-shard namespaces
// <dir>/shard-NNN; metric series carry a "shard" label).
type ShardedOptions struct {
	Options
	// Shards is the number of single-writer partitions (≥ 1). Each shard
	// owns a disjoint slice of the data space and runs its own engine, WAL
	// namespace and (with AsyncQueue) ingestion goroutine, so shards ingest
	// in parallel on multi-core hosts.
	Shards int
	// Router partitions the space across shards. It must be total and
	// deterministic (the same element always routes to the same shard for a
	// given shard count); correctness does not depend on WHICH shard an
	// element lands on — see DESIGN.md §13 — so re-partitioning across
	// restarts is safe. Nil selects GridRouter{}.
	Router Router
}

// mergedView caches one merged snapshot keyed by the per-shard views it was
// computed from: as long as every shard still publishes the same *View, the
// merge is reused.
type mergedView struct {
	parts []*View
	view  *View
}

// ShardedMonitor partitions one logical stream across N per-core
// single-writer Monitor shards and answers queries over the merged candidate
// set. Sequence numbers are assigned globally by the front end, elements are
// routed to their home shard by a deterministic Router, and every shard
// expires by shared sequence/timestamp watermarks, so the merged answer is
// EXACTLY the answer a single monitor over the same stream would give (the
// merge-exactness argument is spelled out in DESIGN.md §13).
//
// Like Monitor it is safe for concurrent use: writes serialize on the front
// end's mutex (then fan out to per-shard locks or queues), queries read the
// shards' published views lock-free and merge outside any lock.
//
// Restrictions: OnEnter/OnLeave/OnTopK callbacks and continuous TopK are not
// supported — band transitions are per-shard events, not global ones.
// Ad-hoc TopK queries (the TopK method) work normally.
type ShardedMonitor struct {
	shards []*Monitor
	router Router
	window int
	period int64
	async  bool
	wm     *watermark
	reg    *obs.Registry
	rec    RecoveryInfo

	mu      sync.Mutex // serializes sequence assignment and sync fan-out
	nextSeq uint64
	closed  bool
	opBuf   []shardOp   // single-op scratch, guarded by mu
	groups  [][]shardOp // per-shard batch scratch, guarded by mu

	merged  atomic.Pointer[mergedView]
	maxCand atomic.Int64 // peak merged candidate count observed at merges
	maxSky  atomic.Int64

	closeOnce sync.Once
	closeErr  error
}

// NewSharded opens a sharded monitor: opt.Shards independent shard engines
// behind one globally sequenced front end. With Durability.Dir set each
// shard recovers its own WAL namespace (<dir>/shard-NNN) and the front end
// resumes numbering after the highest recovered position; the shard count
// and Router may differ from the previous run — see ShardedOptions.Router.
func NewSharded(opt ShardedOptions) (*ShardedMonitor, error) {
	if opt.Shards < 1 {
		return nil, errors.New("pskyline: Shards must be >= 1")
	}
	if opt.OnEnter != nil || opt.OnLeave != nil || opt.OnTopK != nil || opt.TopK > 0 {
		return nil, errors.New("pskyline: sharded monitors do not support OnEnter/OnLeave/TopK tracking: band transitions are per-shard, not global")
	}
	if (opt.Window > 0) == (opt.Period > 0) {
		return nil, errors.New("pskyline: exactly one of Window and Period must be positive")
	}
	r := opt.Router
	if r == nil {
		r = GridRouter{}
	}
	reg := opt.sharedReg
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &ShardedMonitor{
		router: r,
		window: opt.Window,
		period: opt.Period,
		async:  opt.AsyncQueue > 0,
		wm:     &watermark{},
		reg:    reg,
		groups: make([][]shardOp, opt.Shards),
	}
	for i := 0; i < opt.Shards; i++ {
		so := opt.Options
		so.Window = 0
		so.shard = &shardMember{window: opt.Window, wm: s.wm, index: i}
		so.sharedReg = reg
		so.metricLabels = append(append([]obs.Label(nil), opt.metricLabels...),
			obs.Label{Key: "shard", Value: strconv.Itoa(i)})
		if so.Durability.Dir != "" {
			var err error
			if so.Durability, err = so.Durability.Namespace(fmt.Sprintf("shard-%03d", i)); err != nil {
				s.abort()
				return nil, err
			}
		}
		sh, err := NewMonitor(so)
		if err != nil {
			s.abort()
			return nil, fmt.Errorf("pskyline: shard %d: %w", i, err)
		}
		s.shards = append(s.shards, sh)
	}

	// Resume global numbering past every shard's recovered position and
	// aggregate what recovery found. The per-shard maxima are consistent:
	// each shard's log holds a subsequence of one globally numbered stream.
	var next uint64
	var wmTS int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		if n := sh.eng.NextSeq(); n > next {
			next = n
		}
		if sh.lastTS > wmTS {
			wmTS = sh.lastTS
		}
		sh.mu.Unlock()
		ri := sh.Recovery()
		s.rec.Recovered = s.rec.Recovered || ri.Recovered
		if ri.CheckpointSeq > s.rec.CheckpointSeq {
			s.rec.CheckpointSeq = ri.CheckpointSeq
		}
		s.rec.Replayed += ri.Replayed
		s.rec.TruncatedBytes += ri.TruncatedBytes
		s.rec.SegmentsDropped += ri.SegmentsDropped
		s.rec.TornSegments += ri.TornSegments
		s.rec.CorruptSegments += ri.CorruptSegments
		s.rec.CheckpointsSkipped += ri.CheckpointsSkipped
		s.rec.TmpFilesRemoved += ri.TmpFilesRemoved
		s.rec.Duration += ri.Duration
	}
	s.nextSeq = next
	s.wm.count.Store(next)
	s.wm.ts.Store(wmTS)
	if next > 0 {
		// Expiry parity after recovery: a shard's log only drives its own
		// expiry, so shards that lagged the global frontier at crash time
		// catch up here before the first query.
		tick := shardOp{tick: true, seq: next - 1, wmTS: wmTS}
		for _, sh := range s.shards {
			if err := sh.applyOps([]shardOp{tick}); err != nil {
				s.abort()
				return nil, err
			}
		}
	}
	return s, nil
}

// abort closes the shards opened so far during a failed NewSharded.
func (s *ShardedMonitor) abort() {
	for _, sh := range s.shards {
		sh.Close()
	}
}

// Push assigns the next global sequence number to e, routes it to its home
// shard, and — in synchronous mode — ticks every other shard to the new
// watermark so the merged view stays exact after every push. With an async
// queue the op is enqueued on the home shard only (its consumer derives
// watermark ticks itself); call Drain for queries to observe it.
//
// Synchronous sharded pushes pay one lock/publish per shard per element;
// prefer PushBatch or AsyncQueue for throughput.
func (s *ShardedMonitor) Push(e Element) (uint64, error) {
	if err := s.shards[0].validate(e); err != nil {
		return 0, err
	}
	// Stamp admission before the front-end lock: sequencing waits, shard
	// queues and shard locks all count toward the element's latency.
	admit := s.shards[0].admitNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	home := s.router.Route(e.Point, e.Prob, len(s.shards))
	if p := s.shards[home].walErr.Load(); p != nil {
		return 0, *p
	}
	seq := s.nextSeq
	s.nextSeq++
	s.wm.count.Store(s.nextSeq)
	if e.TS > s.wm.ts.Load() {
		s.wm.ts.Store(e.TS)
	}
	if s.async {
		return seq, s.shards[home].aq.enqueueOp(shardOp{el: e, seq: seq, admitNs: admit})
	}
	wmTS := s.wm.ts.Load()
	var firstErr error
	for i, sh := range s.shards {
		op := shardOp{tick: true, seq: seq, wmTS: wmTS}
		if i == home {
			op = shardOp{el: e, seq: seq, admitNs: admit}
		}
		s.opBuf = append(s.opBuf[:0], op)
		if err := sh.applyOps(s.opBuf); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.opBuf[0] = shardOp{}
	return seq, firstErr
}

// PushBatch assigns consecutive global sequence numbers to the batch, groups
// it by home shard preserving order, and applies each group as one write —
// one group commit and one published view per participating shard (plus an
// end-of-batch watermark tick on every shard in synchronous mode). Returns
// the first assigned number. The final merged state is identical to pushing
// the elements one at a time in the same order.
func (s *ShardedMonitor) PushBatch(es []Element) (uint64, error) {
	for i := range es {
		if err := s.shards[0].validate(es[i]); err != nil {
			return 0, fmt.Errorf("batch element %d: %w", i, err)
		}
	}
	admit := s.shards[0].admitNow()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	first := s.nextSeq
	if len(es) == 0 {
		return first, nil
	}
	for _, sh := range s.shards {
		if p := sh.walErr.Load(); p != nil {
			return 0, *p
		}
	}
	maxTS := s.wm.ts.Load()
	for i := range es {
		if es[i].TS > maxTS {
			maxTS = es[i].TS
		}
	}
	last := first + uint64(len(es)) - 1
	s.nextSeq = last + 1
	s.wm.count.Store(s.nextSeq)
	s.wm.ts.Store(maxTS)
	for i := range s.groups {
		s.groups[i] = s.groups[i][:0]
	}
	for i := range es {
		h := s.router.Route(es[i].Point, es[i].Prob, len(s.shards))
		s.groups[h] = append(s.groups[h], shardOp{el: es[i], seq: first + uint64(i), admitNs: admit})
	}
	var firstErr error
	if s.async {
		for i, sh := range s.shards {
			if len(s.groups[i]) == 0 {
				continue
			}
			if err := sh.aq.enqueueOps(s.groups[i]); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	} else {
		tick := shardOp{tick: true, seq: last, wmTS: maxTS}
		for i, sh := range s.shards {
			ops := append(s.groups[i], tick)
			if err := sh.applyOps(ops); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	for i := range s.groups {
		for j := range s.groups[i] {
			s.groups[i][j] = shardOp{} // drop payload references from the scratch
		}
		s.groups[i] = s.groups[i][:0]
	}
	return first, firstErr
}

// Drain blocks until every element pushed before the call is visible to
// queries on every shard, and every shard has expired up to the global
// watermark. Synchronous mode returns immediately.
func (s *ShardedMonitor) Drain() {
	for _, sh := range s.shards {
		sh.Drain()
	}
}

// Close shuts every shard down (draining async queues, flushing and closing
// WALs). Idempotent and safe to call concurrently; returns the first
// shard's error.
func (s *ShardedMonitor) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		for _, sh := range s.shards {
			if err := sh.Close(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// View returns a consistent merged snapshot over all shards. With one shard
// it is the shard's own published view; otherwise the per-shard candidate
// views are merged through the canonical cross-shard recomputation (cached
// until any shard publishes again). Never nil, never blocks the writers.
func (s *ShardedMonitor) View() *View {
	if len(s.shards) == 1 {
		return s.shards[0].View()
	}
	parts := make([]*View, len(s.shards))
	for i, sh := range s.shards {
		parts[i] = sh.View()
	}
	if mv := s.merged.Load(); mv != nil && sameParts(mv.parts, parts) {
		return mv.view
	}
	v := mergeCandidateViews(parts)
	maxAtomic(&s.maxCand, int64(v.stats.Candidates))
	maxAtomic(&s.maxSky, int64(v.stats.Skyline))
	v.stats.MaxCandidates = int(s.maxCand.Load())
	v.stats.MaxSkyline = int(s.maxSky.Load())
	s.merged.Store(&mergedView{parts: parts, view: v})
	return v
}

func sameParts(a, b []*View) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func maxAtomic(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Skyline returns the merged q_1-skyline, Query the merged ad-hoc answer,
// TopK the merged top-k — all against one consistent merged snapshot, with
// the same semantics as the Monitor methods of the same names.
func (s *ShardedMonitor) Skyline() []SkyPoint { return s.View().Skyline() }

// Query answers an ad-hoc skyline query at threshold q' ≥ q_k against the
// merged snapshot.
func (s *ShardedMonitor) Query(qPrime float64) ([]SkyPoint, error) {
	return s.View().Query(qPrime)
}

// TopK returns the k merged candidates with the highest skyline
// probabilities among those with Psky ≥ minQ, in descending order.
func (s *ShardedMonitor) TopK(k int, minQ float64) ([]SkyPoint, error) {
	return s.View().TopK(k, minQ)
}

// Thresholds returns the maintained thresholds, sorted descending.
func (s *ShardedMonitor) Thresholds() []float64 { return s.View().Thresholds() }

// Stats returns merged current sizes and the peak MERGED sizes observed at
// merge points (peaks are sampled when views are merged, not continuously).
func (s *ShardedMonitor) Stats() Stats { return s.View().Stats() }

// AddThreshold begins maintaining an additional threshold on every shard.
func (s *ShardedMonitor) AddThreshold(q float64) error {
	return s.eachThreshold(q, (*Monitor).AddThreshold)
}

// RemoveThreshold stops maintaining a threshold on every shard. The smallest
// threshold cannot be removed.
func (s *ShardedMonitor) RemoveThreshold(q float64) error {
	return s.eachThreshold(q, (*Monitor).RemoveThreshold)
}

// eachThreshold applies a threshold change to every shard under the front
// end's mutex (so no push interleaves and the shards stay in lockstep). The
// change is validated against shard 0; a later shard disagreeing means the
// invariant "all shards share one threshold set" broke — unrecoverable.
func (s *ShardedMonitor) eachThreshold(q float64, f func(*Monitor, float64) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	for i, sh := range s.shards {
		if err := f(sh, q); err != nil {
			if i > 0 {
				panic("pskyline: shard threshold divergence: " + err.Error())
			}
			return err
		}
	}
	return nil
}

// NumShards returns the shard count.
func (s *ShardedMonitor) NumShards() int { return len(s.shards) }

// Shard returns shard i for per-shard inspection (Metrics, Stats, WALState,
// Recovery). The returned Monitor rejects direct pushes.
func (s *ShardedMonitor) Shard(i int) *Monitor { return s.shards[i] }

// Checkpoint installs a checkpoint on every shard. Call Drain first for a
// deterministic cut. The per-shard checkpoints need not be mutually
// consistent: recovery replays each shard's log tail independently and the
// front end re-derives the global position from the recovered maxima.
func (s *ShardedMonitor) Checkpoint() error {
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.Checkpoint(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Recovery returns the aggregated recovery report across shards
// (CheckpointSeq is the maximum, Duration the sum).
func (s *ShardedMonitor) Recovery() RecoveryInfo { return s.rec }

// WritePrometheus renders every shard's metric series (labeled shard="i")
// in the Prometheus text exposition format.
func (s *ShardedMonitor) WritePrometheus(w io.Writer) error {
	return s.reg.WritePrometheus(w)
}

// WriteMetricsJSON renders every shard's metric series as one expvar-style
// JSON object.
func (s *ShardedMonitor) WriteMetricsJSON(w io.Writer) error {
	return s.reg.WriteJSON(w)
}

// WALState returns the worst durability health state across shards.
func (s *ShardedMonitor) WALState() wal.State {
	worst := wal.StateHealthy
	for _, sh := range s.shards {
		if st := sh.WALState(); st > worst {
			worst = st
		}
	}
	return worst
}
