package pskyline

import (
	"errors"
	"fmt"
	"path/filepath"
	"time"

	"pskyline/internal/vfs"
	"pskyline/internal/wal"
)

// DefaultCheckpointEvery is the automatic checkpoint cadence when
// Durability.CheckpointEvery is zero.
const DefaultCheckpointEvery = 1 << 16

// DefaultReattachEvery is the degraded-mode reattach probe cadence when
// Durability.ReattachEvery is zero.
const DefaultReattachEvery = time.Second

// Durability configures the write-ahead log and checkpoint store that make a
// Monitor crash-recoverable. With Dir set, every Push appends the element to
// a segmented WAL and commits it (one group commit per push or per ingested
// batch) before the engine applies it, so a crash at any point loses at most
// what the fsync policy permits; Open then recovers by restoring the newest
// valid checkpoint and re-ingesting the log tail.
//
// The paper's Theorem 5 is why the log exists: the maintained candidate set
// S_{N,q} is minimal, so no snapshot of the in-memory state can reconstruct
// the rest of the window — recovery must replay the raw arrival stream. The
// sliding window bounds the cost: segments behind both the newest checkpoint
// and the window horizon are garbage-collected, so the log's size tracks the
// window, not the stream.
//
// Element payloads (Element.Data) are not written to the WAL — they are
// arbitrary Go values with no stable binary encoding on the hot path. They
// ARE captured by checkpoints (gob), so after recovery, elements restored
// from the checkpoint keep their payloads while elements replayed from the
// log tail carry nil Data.
type Durability struct {
	// Dir is the durability directory holding WAL segments and checkpoints.
	// Empty disables durability.
	Dir string
	// Fsync is the commit durability policy: "always" (fsync on every
	// commit — no loss on power failure), "interval" (background fsync
	// every FsyncInterval — bounded loss on power failure; the default) or
	// "never" (the OS flushes at its leisure). All three survive process
	// crashes (kill -9): commits always reach the OS page cache.
	Fsync string
	// FsyncInterval is the background fsync period under the "interval"
	// policy (0 selects 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL segment rotation threshold (0 selects 64 MiB).
	SegmentBytes int64
	// CheckpointEvery installs a checkpoint (and garbage-collects the log)
	// after this many ingested elements. 0 selects DefaultCheckpointEvery;
	// negative disables automatic checkpoints — the log then grows until
	// Checkpoint is called explicitly.
	CheckpointEvery int

	// Policy selects the response to durability failures (disk write, fsync,
	// rotation or segment-creation errors): "failstop" (the default — the
	// first failure latches a sticky error and every later push fails fast),
	// "retry" (bounded in-place recovery with exponential backoff; transient
	// faults are invisible to callers) or "shed" (drop durability, keep
	// ingesting and serving; a background goroutine restores durability with
	// a fresh checkpoint once the disk heals). See DESIGN.md §12.
	Policy string
	// RetryMax bounds recovery attempts per failed operation under the
	// "retry" policy (0 selects wal.DefaultRetryMax). RetryBase and
	// RetryMaxDelay shape the backoff between attempts.
	RetryMax      int
	RetryBase     time.Duration
	RetryMaxDelay time.Duration
	// ReattachEvery is the degraded-mode probe cadence under the "shed"
	// policy: how often the monitor attempts to write a fresh checkpoint and
	// reattach the log (0 selects DefaultReattachEvery).
	ReattachEvery time.Duration

	// RecoveryWorkers sets how many workers decode WAL segments in parallel
	// during Open's recovery replay (0 selects GOMAXPROCS; 1 forces the
	// serial scan — the A/B control for recovery benchmarks). Records are
	// always re-ingested in exact log order regardless of worker count;
	// only the CPU-bound decode fans out.
	RecoveryWorkers int
	// IncrementalRestore rebuilds the checkpointed band trees by inserting
	// elements one at a time instead of STR bulk loading — the A/B control
	// for recovery benchmarks. The restored state answers every query
	// identically; only tree shape and restore time differ.
	IncrementalRestore bool
	// Progress, when non-nil, is updated live while Open replays the log,
	// so a health endpoint can report recovery progress from another
	// goroutine. Allocate one RecoveryProgress per Open.
	Progress *RecoveryProgress

	// InjectFaults, when non-empty, wraps the durability filesystem in a
	// deterministic, seeded fault injector driven by this schedule spec
	// (vfs.ParseSchedule syntax; the -wal-fault CLI knob). Chaos testing
	// only — never set it in production.
	InjectFaults string
	// FaultSeed seeds the schedule's probabilistic rules (0 selects 1).
	FaultSeed int64

	fs vfs.FS // test hook: overrides the filesystem (see export_test.go)
}

// Namespace derives a Durability configuration rooted at a subdirectory of
// this one — the layout seam behind multi-tenant streams
// (<root>/streams/<name>) and sharded monitors (<stream>/shard-NNN). Every
// other knob (fsync, policy, fault injection, the test filesystem) is
// inherited. Each part must be a valid stream name (see StreamConfig), so a
// namespace can never escape the root or collide with the WAL's own files.
func (d Durability) Namespace(parts ...string) (Durability, error) {
	if d.Dir == "" {
		return d, errors.New("pskyline: Namespace requires Durability.Dir")
	}
	nd := d
	for _, p := range parts {
		if err := ValidateStreamName(p); err != nil {
			return d, err
		}
		nd.Dir = filepath.Join(nd.Dir, p)
	}
	return nd, nil
}

// RecoveryProgress is a live view of Open's crash-recovery replay: how many
// WAL segments have been decoded and how many records re-ingested so far.
// All methods are safe to call from any goroutine while Open runs — pass the
// same value in Durability.Progress and poll it from a readiness endpoint.
type RecoveryProgress struct{ p wal.ReplayProgress }

// SegmentsTotal returns the number of WAL segments the replay will decode.
func (r *RecoveryProgress) SegmentsTotal() uint64 { return r.p.SegmentsTotal() }

// SegmentsDecoded returns the number of segments fully decoded so far.
func (r *RecoveryProgress) SegmentsDecoded() uint64 { return r.p.SegmentsDecoded() }

// RecordsReplayed returns the number of log records re-ingested so far.
func (r *RecoveryProgress) RecordsReplayed() uint64 { return r.p.RecordsReplayed() }

// RecoveryInfo reports what Open found and repaired. It is fixed at Open
// time; Monitor.Recovery returns it.
type RecoveryInfo struct {
	// Recovered reports whether existing durable state (a checkpoint or log
	// records) was found and restored.
	Recovered bool
	// CheckpointSeq is the stream position of the checkpoint recovery
	// started from (0 when recovery replayed the log from scratch).
	CheckpointSeq uint64
	// Replayed counts the WAL records re-ingested after the checkpoint.
	Replayed uint64
	// TruncatedBytes is the torn log tail discarded by crash repair, and
	// SegmentsDropped the whole segments discarded after a corrupt one.
	TruncatedBytes  int64
	SegmentsDropped int
	// TornSegments counts segments cut at a plain torn tail (the expected
	// crash signature); CorruptSegments counts segments cut at actual
	// corruption (bad length, checksum, decode or sequence).
	TornSegments    int
	CorruptSegments int
	// CheckpointsSkipped counts newer checkpoints that failed to decode and
	// were passed over for an older one.
	CheckpointsSkipped int
	// TmpFilesRemoved counts stale checkpoint temp files swept at Open.
	TmpFilesRemoved int
	// Duration is the wall time recovery took.
	Duration time.Duration
}

// Open opens a durable Monitor rooted at opt.Durability.Dir. A fresh
// directory starts an empty monitor whose pushes are logged; an existing one
// is recovered: the newest decodable checkpoint is restored (older ones are
// tried if the newest is unreadable), torn WAL tails from the crash are
// truncated, and the surviving log tail past the checkpoint is re-ingested
// through the exact ingestion path used live, so the recovered state is
// byte-identical to the state the uninterrupted monitor had after its last
// committed push. Checkpointed band trees are rebuilt bottom-up with STR
// bulk loading and log segments are decoded by parallel workers (see
// Durability.RecoveryWorkers / IncrementalRestore for the serial controls),
// so reopening a large window costs seconds, not minutes. Recovery suppresses OnEnter/OnLeave/OnTopK callbacks — the
// transitions were already reported before the crash.
//
// The caller must pass the same core Options (Dims, Window/Period,
// Thresholds, MaxEntries) on every Open of the same directory: the WAL logs
// only elements, not configuration. A mismatch with a recovered checkpoint
// is rejected.
func Open(opt Options) (*Monitor, error) {
	d := opt.Durability
	if d.Dir == "" {
		return nil, errors.New("pskyline: Open requires Options.Durability.Dir")
	}
	pol, err := wal.ParseFsync(d.Fsync)
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	fpol, err := wal.ParsePolicy(d.Policy)
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	if d.CheckpointEvery == 0 {
		d.CheckpointEvery = DefaultCheckpointEvery
	} else if d.CheckpointEvery < 0 {
		d.CheckpointEvery = 0
	}
	if d.ReattachEvery <= 0 {
		d.ReattachEvery = DefaultReattachEvery
	}
	fsys := d.fs
	if fsys == nil && d.InjectFaults != "" {
		seed := d.FaultSeed
		if seed == 0 {
			seed = 1
		}
		f, err := vfs.ParseSchedule(vfs.OS{}, seed, d.InjectFaults)
		if err != nil {
			return nil, fmt.Errorf("pskyline: %w", err)
		}
		fsys = f
	}
	if fsys == nil {
		fsys = vfs.OS{}
	}
	t0 := time.Now()

	// Restore the newest checkpoint that decodes; fall back to older ones
	// (atomic installation makes a corrupt newest checkpoint unlikely, but a
	// decode failure must not brick the directory).
	refs, err := wal.Checkpoints(fsys, d.Dir)
	if err != nil {
		return nil, fmt.Errorf("pskyline: open: %w", err)
	}
	var (
		m       *Monitor
		rec     RecoveryInfo
		lastErr error
	)
	for _, ref := range refs {
		f, err := fsys.Open(ref.Path)
		if err != nil {
			lastErr = err
			rec.CheckpointsSkipped++
			continue
		}
		m2, err := restoreCore(f, opt)
		f.Close()
		if err != nil {
			lastErr = err
			rec.CheckpointsSkipped++
			continue
		}
		m = m2
		rec.CheckpointSeq = ref.Seq
		rec.Recovered = true
		break
	}
	if m == nil {
		if rec.CheckpointsSkipped > 0 {
			return nil, fmt.Errorf("pskyline: open: no checkpoint decodes (last error: %w); refusing to silently restart from the log alone", lastErr)
		}
		if m, err = newMonitorCore(opt); err != nil {
			return nil, err
		}
	} else if err := m.checkConfig(opt); err != nil {
		return nil, err
	}

	m.fsys = fsys
	m.walPol = fpol
	m.degradedCh = make(chan struct{}, 1)
	w, scan, err := wal.Open(d.Dir, wal.Options{
		Fsync:         pol,
		FsyncInterval: d.FsyncInterval,
		SegmentBytes:  d.SegmentBytes,
		SparseSeq:     opt.shard != nil,
		FS:            fsys,
		Policy:        fpol,
		RetryMax:      d.RetryMax,
		RetryBase:     d.RetryBase,
		RetryMaxDelay: d.RetryMaxDelay,
		OnStateChange: m.walStateChanged,
		Metrics:       &m.met.wal,
	})
	if err != nil {
		return nil, fmt.Errorf("pskyline: %w", err)
	}
	rec.TruncatedBytes = scan.TruncatedBytes
	rec.SegmentsDropped = scan.SegmentsDropped
	rec.TornSegments = scan.TornSegments
	rec.CorruptSegments = scan.CorruptSegments
	rec.TmpFilesRemoved = scan.TmpFilesRemoved
	if scan.HasRecords {
		rec.Recovered = true
	}

	// Re-ingest the committed log tail through the live ingestion path.
	// A dense (standalone) log must continue exactly where the engine
	// stands: a gap means the checkpoint predates the garbage-collected
	// log. A shard member's log is legitimately sparse — it holds one
	// shard's subsequence of the globally numbered stream — so only
	// regressions (records behind the engine) are rejected.
	m.replaying = true
	workers := d.RecoveryWorkers
	if workers < 0 {
		workers = 1
	}
	var wp *wal.ReplayProgress
	if d.Progress != nil {
		wp = &d.Progress.p
	}
	replayed, rerr := w.ReplayParallel(m.eng.NextSeq(), workers, wp, func(r wal.Record) error {
		want := m.eng.NextSeq()
		if m.opts.shard != nil {
			if r.Seq < want {
				return fmt.Errorf("log record %d behind shard engine position %d", r.Seq, want)
			}
			return m.replayShardLocked(r)
		}
		if r.Seq != want {
			return fmt.Errorf("log record %d does not continue engine position %d (checkpoint older than the retained log?)", r.Seq, want)
		}
		_, err := m.ingestLocked(Element{Point: r.Point, Prob: r.Prob, TS: r.TS})
		return err
	})
	m.replaying = false
	if rerr != nil {
		w.Close()
		return nil, fmt.Errorf("pskyline: open: replay: %w", rerr)
	}
	rec.Replayed = replayed
	rec.Duration = time.Since(t0)

	// If the checkpoint is ahead of the surviving tail (possible under lax
	// fsync policies after a power failure), appends restart in a fresh
	// segment so intra-segment sequence continuity holds.
	w.AlignTo(m.eng.NextSeq())
	m.wal = w
	m.dur = d
	m.ckptSeq = rec.CheckpointSeq
	m.met.ckptSeqA.Store(rec.CheckpointSeq)
	m.recovery = rec
	return m.finish(), nil
}

// checkConfig verifies that the Options passed to Open agree with the
// recovered checkpoint on everything the checkpoint fixes.
func (m *Monitor) checkConfig(opt Options) error {
	if opt.Dims != m.eng.Dims() {
		return fmt.Errorf("pskyline: open: Options.Dims=%d but the recovered state has %d dimensions", opt.Dims, m.eng.Dims())
	}
	if opt.shard != nil {
		// Shard engines run windowless; the logical count window is
		// recorded in the checkpoint instead.
		if opt.shard.window != m.snapShardWindow {
			return fmt.Errorf("pskyline: open: shard window %d but the recovered state has window %d", opt.shard.window, m.snapShardWindow)
		}
	} else if opt.Window != m.eng.Window() {
		return fmt.Errorf("pskyline: open: Options.Window=%d but the recovered state has window %d", opt.Window, m.eng.Window())
	}
	if opt.Period != m.period {
		return fmt.Errorf("pskyline: open: Options.Period=%d but the recovered state has period %d", opt.Period, m.period)
	}
	return nil
}

// Recovery returns what Open found and repaired (the zero RecoveryInfo for
// non-durable monitors).
func (m *Monitor) Recovery() RecoveryInfo { return m.recovery }

// WALState returns the durability health state (wal.StateHealthy for
// non-durable monitors, where there is nothing to be unhealthy about).
// Lock-free.
func (m *Monitor) WALState() wal.State {
	if m.wal == nil {
		return wal.StateHealthy
	}
	return m.wal.State()
}

// walStateChanged is the WAL's OnStateChange hook. It runs with the WAL
// mutex held, so it only pokes the reattacher's wakeup channel (non-blocking;
// the channel has capacity 1 and the reattacher also polls on a ticker).
func (m *Monitor) walStateChanged(s wal.State) {
	if s == wal.StateDegraded {
		select {
		case m.degradedCh <- struct{}{}:
		default:
		}
	}
}

// reattacher is the Shed policy's background recovery goroutine: whenever
// the WAL sits degraded, it periodically tries to write a fresh checkpoint
// (capturing everything ingested so far, including the records shed while
// degraded) and, on success, reattaches the log. stop is captured at spawn
// time like the WAL flusher's.
func (m *Monitor) reattacher(stop <-chan struct{}) {
	defer close(m.reattachDone)
	t := time.NewTicker(m.dur.ReattachEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-m.degradedCh:
		case <-t.C:
		}
		if m.wal.State() == wal.StateDegraded {
			m.tryReattachLocked()
		}
	}
}

// tryReattachLocked makes one reattach attempt: checkpoint at the current
// stream position, then hand the log a clean restart at that position. Both
// steps can fail (the disk may still be sick) — the monitor simply stays
// degraded and the next tick retries.
func (m *Monitor) tryReattachLocked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed || m.wal.State() != wal.StateDegraded {
		return
	}
	seq := m.eng.NextSeq()
	if _, err := wal.WriteCheckpoint(m.fsys, m.dur.Dir, seq, m.snapshotLocked); err != nil {
		m.met.ckptFails.Inc()
		return
	}
	m.ckptSeq = seq
	m.ckptSince = 0
	m.met.ckpts.Inc()
	m.met.ckptSeqA.Store(seq)
	if err := m.wal.Reattach(seq); err != nil {
		return
	}
	// Old checkpoints are superseded; a failure here is retried by the next
	// regular checkpoint.
	wal.RemoveCheckpointsBefore(m.fsys, m.dur.Dir, seq)
}

// stopReattacher shuts the Shed recovery goroutine down. Idempotent; no-op
// for monitors without one.
func (m *Monitor) stopReattacher() {
	if m.reattachStop == nil {
		return
	}
	m.reattachOnce.Do(func() {
		close(m.reattachStop)
		<-m.reattachDone
	})
}

// Checkpoint installs a checkpoint of the current ingested state and
// garbage-collects log segments and older checkpoints that recovery can no
// longer need. With an async queue, call Drain first to checkpoint a
// deterministic cut of the stream.
func (m *Monitor) Checkpoint() error {
	if m.wal == nil {
		return errors.New("pskyline: monitor has no durability (Options.Durability.Dir)")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.checkpointLocked()
}

// logOneLocked appends one element to the WAL and commits it, before the
// engine applies it. Callers hold m.mu.
func (m *Monitor) logOneLocked(e Element) error {
	if err := m.wal.AppendElement(m.eng.NextSeq(), e.Point, e.Prob, e.TS); err != nil {
		return m.walFail(err)
	}
	if err := m.wal.Commit(); err != nil {
		return m.walFail(err)
	}
	return nil
}

// logBatchLocked appends a batch under one group commit: len(es) appends,
// one write, at most one fsync. Callers hold m.mu.
func (m *Monitor) logBatchLocked(es []Element) error {
	seq := m.eng.NextSeq()
	for i := range es {
		if err := m.wal.AppendElement(seq+uint64(i), es[i].Point, es[i].Prob, es[i].TS); err != nil {
			return m.walFail(err)
		}
	}
	if err := m.wal.Commit(); err != nil {
		return m.walFail(err)
	}
	return nil
}

// walFail latches a durability failure. With the new health state machine
// the WAL only returns an error once it is detached (FailStop, or Retry with
// its budget exhausted) — Retry successes and Shed degradations are absorbed
// below it — so an error here is final and latching it lets Push fail fast
// without taking the lock.
func (m *Monitor) walFail(err error) error {
	werr := fmt.Errorf("pskyline: durability: %w", err)
	m.walErr.CompareAndSwap(nil, &werr)
	return werr
}

// maybeCheckpointLocked counts ingested elements toward the automatic
// checkpoint cadence. Checkpoint failures are counted and retried after
// another CheckpointEvery elements — the monitor keeps serving; only
// recovery cost grows. While the WAL is degraded the reattacher owns
// checkpointing (a checkpoint without a reattach would be wasted work).
// Callers hold m.mu.
func (m *Monitor) maybeCheckpointLocked(n int) {
	if m.wal == nil || m.dur.CheckpointEvery <= 0 {
		return
	}
	m.ckptSince += n
	if m.ckptSince < m.dur.CheckpointEvery {
		return
	}
	if m.wal.State() == wal.StateDegraded {
		return
	}
	if err := m.checkpointLocked(); err != nil {
		m.met.ckptFails.Inc()
		m.ckptSince = 0 // retry after another full interval, not every push
	}
}

// checkpointLocked installs a checkpoint at the current stream position,
// then garbage-collects: log segments strictly behind both the checkpoint
// and the window horizon, and checkpoints older than the new one. Callers
// hold m.mu.
func (m *Monitor) checkpointLocked() error {
	seq := m.eng.NextSeq()
	if _, err := wal.WriteCheckpoint(m.fsys, m.dur.Dir, seq, m.snapshotLocked); err != nil {
		return err
	}
	m.ckptSeq = seq
	m.ckptSince = 0
	m.met.ckpts.Inc()
	m.met.ckptSeqA.Store(seq)
	keep := seq
	if h := m.horizonLocked(); h < keep {
		keep = h
	}
	if _, err := m.wal.GC(keep); err != nil {
		return err
	}
	if _, err := wal.RemoveCheckpointsBefore(m.fsys, m.dur.Dir, seq); err != nil {
		return err
	}
	return nil
}

// horizonLocked returns the sequence of the oldest element still inside the
// sliding window. The engine tracks it exactly — next−fill arithmetic would
// overestimate it for shard members, whose in-window sequences are sparse,
// and GC past the true horizon would lose replayable records. Callers hold
// m.mu.
func (m *Monitor) horizonLocked() uint64 {
	return m.eng.HorizonSeq()
}
