package pskyline

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pskyline/internal/obs"
	"pskyline/internal/wal"
)

// ValidateStreamName checks a tenant stream name: 1–64 characters from
// [A-Za-z0-9._-], starting with a letter or digit. The character set admits
// no path separators and the leading-alnum rule excludes "." and "..", so a
// valid name is always a safe single path component — stream names double as
// WAL namespace directories and as metric label values.
func ValidateStreamName(s string) error {
	if s == "" {
		return errors.New("pskyline: empty stream name")
	}
	if len(s) > 64 {
		return fmt.Errorf("pskyline: stream name %q longer than 64 characters", s)
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		if i == 0 {
			if !alnum {
				return fmt.Errorf("pskyline: stream name %q must start with a letter or digit", s)
			}
			continue
		}
		if !alnum && c != '.' && c != '_' && c != '-' {
			return fmt.Errorf("pskyline: stream name %q contains invalid character %q", s, c)
		}
	}
	return nil
}

// StreamConfig describes one named stream of a StreamRegistry: its monitor
// options, optional sharding, and whether the registry's durability root
// applies to it.
type StreamConfig struct {
	Name    string
	Options Options
	// Shards > 1 opens the stream as a ShardedMonitor.
	Shards int
	// Router overrides the shard router (nil selects GridRouter{}).
	Router Router
	// Durable roots the stream's WAL namespace under the registry's
	// durability directory (<root>/streams/<name>).
	Durable bool
}

// ParseStreamSpec parses a CLI stream specification of the form
//
//	name:key=value,key=value,...
//
// with keys dims, window, period, q (thresholds, "|"-separated, descending),
// shards, router (grid or band), async (queue capacity), async-policy,
// wal (on/off), wal-fsync, wal-policy and checkpoint-every. Example:
//
//	sensors:dims=3,window=100000,q=0.3|0.5,shards=4,wal=on
func ParseStreamSpec(spec string) (StreamConfig, error) {
	var cfg StreamConfig
	name, rest, ok := strings.Cut(spec, ":")
	if !ok {
		return cfg, fmt.Errorf("pskyline: stream spec %q: want name:key=value,...", spec)
	}
	name = strings.TrimSpace(name)
	if err := ValidateStreamName(name); err != nil {
		return cfg, err
	}
	cfg.Name = name
	cfg.Shards = 1
	for _, kv := range strings.Split(rest, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return cfg, fmt.Errorf("pskyline: stream %q: option %q: want key=value", name, kv)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		bad := func(err error) (StreamConfig, error) {
			return StreamConfig{}, fmt.Errorf("pskyline: stream %q: option %s=%s: %w", name, k, v, err)
		}
		switch k {
		case "dims":
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(err)
			}
			cfg.Options.Dims = n
		case "window":
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(err)
			}
			cfg.Options.Window = n
		case "period":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return bad(err)
			}
			cfg.Options.Period = n
		case "q":
			var ths []float64
			for _, qs := range strings.Split(v, "|") {
				q, err := strconv.ParseFloat(strings.TrimSpace(qs), 64)
				if err != nil {
					return bad(err)
				}
				ths = append(ths, q)
			}
			cfg.Options.Thresholds = ths
		case "shards":
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(err)
			}
			if n < 1 {
				return bad(errors.New("must be >= 1"))
			}
			cfg.Shards = n
		case "router":
			switch strings.ToLower(v) {
			case "grid":
				cfg.Router = GridRouter{}
			case "band":
				cfg.Router = BandRouter{}
			default:
				return bad(errors.New("want grid or band"))
			}
		case "async":
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(err)
			}
			if n < 0 {
				return bad(errors.New("must be >= 0"))
			}
			cfg.Options.AsyncQueue = n
		case "async-policy":
			pol, err := ParseOverloadPolicy(v)
			if err != nil {
				return bad(err)
			}
			cfg.Options.AsyncPolicy = pol
		case "wal":
			switch strings.ToLower(v) {
			case "on", "true", "1":
				cfg.Durable = true
			case "off", "false", "0":
				cfg.Durable = false
			default:
				return bad(errors.New("want on or off"))
			}
		case "wal-fsync":
			if _, err := wal.ParseFsync(v); err != nil {
				return bad(err)
			}
			cfg.Options.Durability.Fsync = v
		case "wal-policy":
			if _, err := wal.ParsePolicy(v); err != nil {
				return bad(err)
			}
			cfg.Options.Durability.Policy = v
		case "checkpoint-every":
			n, err := strconv.Atoi(v)
			if err != nil {
				return bad(err)
			}
			cfg.Options.Durability.CheckpointEvery = n
		default:
			return bad(errors.New("unknown option"))
		}
	}
	if cfg.Options.Dims < 1 {
		return StreamConfig{}, fmt.Errorf("pskyline: stream %q: dims is required (>= 1)", name)
	}
	if (cfg.Options.Window > 0) == (cfg.Options.Period > 0) {
		return StreamConfig{}, fmt.Errorf("pskyline: stream %q: exactly one of window and period must be positive", name)
	}
	if len(cfg.Options.Thresholds) == 0 {
		return StreamConfig{}, fmt.Errorf("pskyline: stream %q: q is required", name)
	}
	return cfg, nil
}

// ParseStreamSpecs parses a ";"-separated list of stream specifications,
// rejecting duplicate names.
func ParseStreamSpecs(specs string) ([]StreamConfig, error) {
	var out []StreamConfig
	seen := make(map[string]bool)
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		cfg, err := ParseStreamSpec(spec)
		if err != nil {
			return nil, err
		}
		if seen[cfg.Name] {
			return nil, fmt.Errorf("pskyline: duplicate stream name %q", cfg.Name)
		}
		seen[cfg.Name] = true
		out = append(out, cfg)
	}
	if len(out) == 0 {
		return nil, errors.New("pskyline: no stream specifications")
	}
	return out, nil
}

// Operator is the interface shared by *Monitor and *ShardedMonitor: one
// logical stream's write path, query surface and operational controls. It is
// what multi-tenant hosts (StreamRegistry, serve mode) program against.
type Operator interface {
	Push(e Element) (uint64, error)
	PushBatch(es []Element) (uint64, error)
	Drain()
	Close() error

	View() *View
	Skyline() []SkyPoint
	Query(qPrime float64) ([]SkyPoint, error)
	TopK(k int, minQ float64) ([]SkyPoint, error)
	Thresholds() []float64
	Stats() Stats
	AddThreshold(q float64) error
	RemoveThreshold(q float64) error

	Checkpoint() error
	Recovery() RecoveryInfo
	WALState() wal.State
	WritePrometheus(w io.Writer) error
	WriteMetricsJSON(w io.Writer) error
	Flight() FlightInfo
}

var (
	_ Operator = (*Monitor)(nil)
	_ Operator = (*ShardedMonitor)(nil)
)

// StreamRegistry hosts any number of independently configured named streams
// behind one durability root and one metrics registry: stream WAL
// namespaces live at <root>/streams/<name> (shards one level deeper) and
// every metric series carries a stream="<name>" label (plus shard="<i>" for
// sharded streams), so a single /metrics endpoint and a single directory
// tree serve all tenants.
type StreamRegistry struct {
	mu      sync.RWMutex
	streams map[string]Operator
	cfgs    map[string]StreamConfig
	obs     *obs.Registry
	base    Durability
}

// NewStreamRegistry returns an empty registry. base.Dir, when set, roots the
// durable streams' namespaces; base's other knobs are inherited by every
// durable stream (a stream spec can override fsync/policy/cadence).
func NewStreamRegistry(base Durability) *StreamRegistry {
	return &StreamRegistry{
		streams: make(map[string]Operator),
		cfgs:    make(map[string]StreamConfig),
		obs:     obs.NewRegistry(),
		base:    base,
	}
}

// Open creates (or recovers, for durable streams) the named stream. Names
// are unique; reopening an open name is an error.
func (r *StreamRegistry) Open(cfg StreamConfig) (Operator, error) {
	if err := ValidateStreamName(cfg.Name); err != nil {
		return nil, err
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.streams[cfg.Name]; dup {
		return nil, fmt.Errorf("pskyline: stream %q already open", cfg.Name)
	}
	o := cfg.Options
	o.sharedReg = r.obs
	o.metricLabels = []obs.Label{{Key: "stream", Value: cfg.Name}}
	if cfg.Durable {
		if r.base.Dir == "" {
			return nil, fmt.Errorf("pskyline: stream %q wants durability but the registry has no root directory", cfg.Name)
		}
		d := r.base
		// Per-stream overrides ride in on cfg.Options.Durability.
		if o.Durability.Fsync != "" {
			d.Fsync = o.Durability.Fsync
		}
		if o.Durability.Policy != "" {
			d.Policy = o.Durability.Policy
		}
		if o.Durability.CheckpointEvery != 0 {
			d.CheckpointEvery = o.Durability.CheckpointEvery
		}
		var err error
		if d, err = d.Namespace("streams", cfg.Name); err != nil {
			return nil, err
		}
		o.Durability = d
	} else {
		o.Durability = Durability{}
	}
	var (
		op  Operator
		err error
	)
	if cfg.Shards > 1 {
		op, err = NewSharded(ShardedOptions{Options: o, Shards: cfg.Shards, Router: cfg.Router})
	} else {
		op, err = NewMonitor(o)
	}
	if err != nil {
		return nil, fmt.Errorf("pskyline: stream %q: %w", cfg.Name, err)
	}
	r.streams[cfg.Name] = op
	r.cfgs[cfg.Name] = cfg
	return op, nil
}

// Get returns the named stream.
func (r *StreamRegistry) Get(name string) (Operator, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	op, ok := r.streams[name]
	return op, ok
}

// Config returns the named stream's configuration as passed to Open.
func (r *StreamRegistry) Config(name string) (StreamConfig, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cfg, ok := r.cfgs[name]
	return cfg, ok
}

// Names returns the open stream names, sorted.
func (r *StreamRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.streams))
	for name := range r.streams {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CloseAll closes every stream, returning the first error.
func (r *StreamRegistry) CloseAll() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var firstErr error
	for _, name := range func() []string {
		ns := make([]string, 0, len(r.streams))
		for n := range r.streams {
			ns = append(ns, n)
		}
		sort.Strings(ns)
		return ns
	}() {
		if err := r.streams[name].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		delete(r.streams, name)
		delete(r.cfgs, name)
	}
	return firstErr
}

// WritePrometheus renders every stream's metrics (labeled by stream and
// shard) in the Prometheus text exposition format.
func (r *StreamRegistry) WritePrometheus(w io.Writer) error {
	return r.obs.WritePrometheus(w)
}

// WriteMetricsJSON renders every stream's metrics as one expvar-style JSON
// object.
func (r *StreamRegistry) WriteMetricsJSON(w io.Writer) error {
	return r.obs.WriteJSON(w)
}
