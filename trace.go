package pskyline

import (
	"math"
	"sync/atomic"
	"time"

	"pskyline/internal/obs"
)

// DefaultTraceDepth is the trace ring capacity used when Options.TraceDepth
// is zero.
const DefaultTraceDepth = 256

// traceMaxDims bounds the coordinates stored per trace record; points with
// more dimensions are truncated in the trace (the authoritative coordinates
// remain available through the read views).
const traceMaxDims = 8

// TraceEvent is one recorded skyline transition: an element entering or
// leaving the q_1-skyline as the window slides.
type TraceEvent struct {
	// Seq is the element's arrival position.
	Seq uint64
	// Entered reports the direction: true for an element entering the
	// skyline, false for one leaving it.
	Entered bool
	// Point is the element's location, truncated to 8 dimensions in the
	// trace.
	Point []float64
	// Prob is the element's occurrence probability.
	Prob float64
	// Psky is the element's skyline probability at the moment of the
	// transition (for departures from the window, its final value).
	Psky float64
	// FromBand and ToBand are the threshold band indices of the move
	// (−1 = outside the candidate set).
	FromBand, ToBand int
	// At is the time the transition was recorded. The stamp is the single
	// monotonic clock reading the engine took when it began processing the
	// arrival or expiry that fired the transition — the same reading that
	// arms the stage timing — converted to wall clock through one shared
	// base, so deltas between the At values of different events are true
	// monotonic intervals (wall-clock steps cannot distort them).
	At time.Time
	// Processed is the number of stream elements ingested when the
	// transition fired.
	Processed uint64
}

// traceRing is a bounded lock-free ring of the last M skyline transitions.
//
// There is a single writer (the ingestion path, under the Monitor's mutex)
// and any number of readers that never block it. Each slot is a seqlock:
// the writer bumps the slot's version to odd, stores the payload through
// individual atomics, bumps the version to the next even value, and only
// then advances the ring's record count. A reader accepts a slot only when
// it observes the same even version before and after decoding, so a record
// overwritten mid-read is skipped rather than returned torn. Because every
// payload field is itself an atomic, concurrent access is well-defined for
// the race detector too — the versions add cross-field consistency on top.
//
// Recording is allocation-free: a fixed number of atomic stores into
// preallocated slots.
type traceRing struct {
	mask  uint64
	n     atomic.Uint64 // total records ever written
	slots []traceSlot
}

type traceSlot struct {
	ver       atomic.Uint64 // even = stable, odd = mid-write
	seq       atomic.Uint64
	processed atomic.Uint64
	atNs      atomic.Int64
	prob      atomic.Uint64 // float64 bits
	psky      atomic.Uint64 // float64 bits
	from      atomic.Int64
	to        atomic.Int64
	dims      atomic.Uint64
	coord     [traceMaxDims]atomic.Uint64 // float64 bits
}

// newTraceRing returns a ring holding the last `depth` transitions (rounded
// up to a power of two, minimum 1).
func newTraceRing(depth int) *traceRing {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	cap := 1
	for cap < depth {
		cap <<= 1
	}
	return &traceRing{mask: uint64(cap - 1), slots: make([]traceSlot, cap)}
}

// record appends one transition. Single writer only. atNs is the engine's
// shared arrival stamp (obs.NowNs), not a fresh clock read: the transition
// is timestamped at the instant its triggering arrival/expiry began, with no
// extra wall-clock read on the hot path.
func (r *traceRing) record(seq, processed uint64, atNs int64, prob, psky float64, from, to int, pt []float64) {
	pos := r.n.Load()
	s := &r.slots[pos&r.mask]
	v := s.ver.Load()
	s.ver.Store(v + 1)
	s.seq.Store(seq)
	s.processed.Store(processed)
	s.atNs.Store(atNs)
	s.prob.Store(math.Float64bits(prob))
	s.psky.Store(math.Float64bits(psky))
	s.from.Store(int64(from))
	s.to.Store(int64(to))
	d := len(pt)
	if d > traceMaxDims {
		d = traceMaxDims
	}
	s.dims.Store(uint64(d))
	for i := 0; i < d; i++ {
		s.coord[i].Store(math.Float64bits(pt[i]))
	}
	s.ver.Store(v + 2)
	r.n.Store(pos + 1)
}

// collect decodes the ring's current contents, oldest first. Records being
// overwritten concurrently are skipped; everything returned is a complete,
// untorn transition.
func (r *traceRing) collect() []TraceEvent {
	n := r.n.Load()
	depth := uint64(len(r.slots))
	start := uint64(0)
	if n > depth {
		start = n - depth
	}
	out := make([]TraceEvent, 0, n-start)
	for pos := start; pos < n; pos++ {
		s := &r.slots[pos&r.mask]
		v1 := s.ver.Load()
		if v1&1 == 1 {
			continue
		}
		d := int(s.dims.Load())
		ev := TraceEvent{
			Seq:       s.seq.Load(),
			Processed: s.processed.Load(),
			At:        obs.WallAt(s.atNs.Load()),
			Prob:      math.Float64frombits(s.prob.Load()),
			Psky:      math.Float64frombits(s.psky.Load()),
			FromBand:  int(s.from.Load()),
			ToBand:    int(s.to.Load()),
			Point:     make([]float64, d),
		}
		for i := 0; i < d; i++ {
			ev.Point[i] = math.Float64frombits(s.coord[i].Load())
		}
		if s.ver.Load() != v1 {
			continue // overwritten while decoding
		}
		ev.Entered = ev.ToBand == 0
		out = append(out, ev)
	}
	return out
}

// Trace returns the most recent skyline transitions, oldest first, up to
// the configured trace depth. It reads the lock-free trace ring: it never
// blocks ingestion and may be called from any goroutine. Transitions being
// overwritten at the instant of the call are omitted rather than returned
// torn.
func (m *Monitor) Trace() []TraceEvent {
	return m.trace.collect()
}
