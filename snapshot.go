package pskyline

import (
	"encoding/gob"
	"fmt"
	"io"

	"pskyline/internal/core"
)

// monitorSnapshot wraps the engine checkpoint with the monitor's own state.
type monitorSnapshot struct {
	Period int64
	Data   map[uint64]any
}

// Snapshot writes a checkpoint of the monitor to w: the full candidate set
// with exact probabilities, stream position, window state, statistics and
// element payloads. Payload values are encoded with encoding/gob — custom
// payload types must be registered with gob.Register before snapshotting
// and restoring. Callbacks are configuration, not state; re-supply them to
// RestoreMonitor.
//
// Snapshot captures the ingested state: with an async queue, elements still
// sitting in the queue are NOT part of the checkpoint even though their
// Push already returned. Call Drain first to checkpoint a deterministic
// cut of the stream.
func (m *Monitor) Snapshot(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	enc := gob.NewEncoder(w)
	if err := enc.Encode(monitorSnapshot{Period: m.period, Data: m.data}); err != nil {
		return fmt.Errorf("pskyline: snapshot: %w", err)
	}
	return m.eng.SnapshotTo(enc)
}

// RestoreOptions re-attaches configuration that is not part of a
// checkpoint: callbacks and continuous top-k tracking.
type RestoreOptions struct {
	OnEnter func(SkyPoint)
	OnLeave func(SkyPoint)
	// TopK, TopKMinQ and OnTopK re-enable continuous top-k monitoring, as
	// in Options.
	TopK     int
	TopKMinQ float64
	OnTopK   func([]SkyPoint)
	// AsyncQueue re-enables the bounded async ingestion queue, as in
	// Options.
	AsyncQueue int
	// TraceDepth sizes the restored monitor's trace ring, as in Options.
	// The ring starts empty: transitions are recorded from the next Push.
	TraceDepth int
}

// RestoreMonitor reads a checkpoint written by Snapshot and returns a
// monitor that continues exactly where the snapshotted one stopped.
func RestoreMonitor(r io.Reader, ro RestoreOptions) (*Monitor, error) {
	dec := gob.NewDecoder(r)
	var ms monitorSnapshot
	if err := dec.Decode(&ms); err != nil {
		return nil, fmt.Errorf("pskyline: restore: %w", err)
	}
	m := &Monitor{
		data:   ms.Data,
		period: ms.Period,
		opts: Options{
			OnEnter: ro.OnEnter, OnLeave: ro.OnLeave,
			TopK: ro.TopK, TopKMinQ: ro.TopKMinQ, OnTopK: ro.OnTopK,
			AsyncQueue: ro.AsyncQueue, TraceDepth: ro.TraceDepth,
		},
	}
	if m.data == nil {
		m.data = make(map[uint64]any)
	}
	m.trace = newTraceRing(ro.TraceDepth)
	eng, err := core.RestoreFrom(dec, core.RestoreOptions{OnChange: m.onChange, Metrics: &m.met.eng})
	if err != nil {
		return nil, fmt.Errorf("pskyline: restore: %w", err)
	}
	m.eng = eng
	if ro.TopK > 0 {
		minQ := ro.TopKMinQ
		if minQ == 0 {
			ths := eng.Thresholds()
			minQ = ths[len(ths)-1]
		}
		m.topk, err = core.NewTopKTracker(eng, ro.TopK, minQ)
		if err != nil {
			return nil, fmt.Errorf("pskyline: restore: %w", err)
		}
	}
	m.dims = eng.Dims()
	m.publishLocked()
	m.buildRegistry()
	if ro.AsyncQueue > 0 {
		m.aq = newAsyncQueue(m, ro.AsyncQueue)
	}
	return m, nil
}
