package pskyline

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"pskyline/internal/core"
)

// Checkpoint files open with a magic string and a format version so that a
// restore can tell "not a checkpoint at all" from "a checkpoint this build
// cannot read" — both with a clear error instead of a gob decode failure
// deep in the stream.
var ckptMagic = []byte("PSKYCKPT")

// ckptVersion is the current checkpoint format version. Bump it whenever the
// encoded layout changes incompatibly; old builds then reject new files (and
// vice versa) up front.
const ckptVersion = 1

const ckptHdrLen = 12 // magic + uint32 version

// monitorSnapshot wraps the engine checkpoint with the monitor's own state.
// LastTS and ShardWindow were added for sharded monitors; gob tolerates the
// added fields in both directions (older checkpoints restore them as zero),
// so the format version is unchanged.
type monitorSnapshot struct {
	Period int64
	Data   map[uint64]any
	// ProbSum and ProbCount carry the occurrence-probability running sum
	// behind the mean-probability and theory-bound gauges across restarts.
	ProbSum   float64
	ProbCount uint64
	// LastTS is the highest ingested element timestamp — for shard members
	// it seeds the recovered global watermark.
	LastTS int64
	// ShardWindow is the logical count window of a shard member (0 for
	// standalone monitors and time windows): the shard engine itself runs
	// windowless, so the Open-time configuration check needs it recorded
	// here.
	ShardWindow int
}

// Snapshot writes a checkpoint of the monitor to w: a versioned header, then
// the full candidate set with exact probabilities, stream position, window
// state, statistics and element payloads. Payload values are encoded with
// encoding/gob — custom payload types must be registered with gob.Register
// before snapshotting and restoring. Callbacks are configuration, not state;
// re-supply them to RestoreMonitor.
//
// Snapshot captures the ingested state: with an async queue, elements still
// sitting in the queue are NOT part of the checkpoint even though their
// Push already returned. Call Drain first to checkpoint a deterministic
// cut of the stream.
func (m *Monitor) Snapshot(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.snapshotLocked(w)
}

// snapshotLocked is the checkpoint writer shared by Snapshot and the
// durability subsystem's automatic checkpoints. Callers hold m.mu.
func (m *Monitor) snapshotLocked(w io.Writer) error {
	var hdr [ckptHdrLen]byte
	copy(hdr[:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[8:], ckptVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("pskyline: snapshot: %w", err)
	}
	shardWindow := 0
	if m.opts.shard != nil {
		shardWindow = m.opts.shard.window
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(monitorSnapshot{
		Period:      m.period,
		Data:        m.data,
		ProbSum:     m.probSum,
		ProbCount:   m.probCount,
		LastTS:      m.lastTS,
		ShardWindow: shardWindow,
	}); err != nil {
		return fmt.Errorf("pskyline: snapshot: %w", err)
	}
	return m.eng.SnapshotTo(enc)
}

// readSnapshotHeader validates the checkpoint magic and format version.
func readSnapshotHeader(r io.Reader) error {
	var hdr [ckptHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("pskyline: restore: reading checkpoint header: %w", err)
	}
	if !bytes.Equal(hdr[:8], ckptMagic) {
		return errors.New("pskyline: restore: not a pskyline checkpoint (bad magic)")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != ckptVersion {
		return fmt.Errorf("pskyline: restore: checkpoint format version %d, this build reads version %d", v, ckptVersion)
	}
	return nil
}

// RestoreOptions re-attaches configuration that is not part of a
// checkpoint: callbacks and continuous top-k tracking.
type RestoreOptions struct {
	OnEnter func(SkyPoint)
	OnLeave func(SkyPoint)
	// TopK, TopKMinQ and OnTopK re-enable continuous top-k monitoring, as
	// in Options.
	TopK     int
	TopKMinQ float64
	OnTopK   func([]SkyPoint)
	// AsyncQueue re-enables the bounded async ingestion queue, as in
	// Options.
	AsyncQueue int
	// TraceDepth sizes the restored monitor's trace ring, as in Options.
	// The ring starts empty: transitions are recorded from the next Push.
	TraceDepth int
}

// RestoreMonitor reads a checkpoint written by Snapshot and returns a
// monitor that continues exactly where the snapshotted one stopped.
func RestoreMonitor(r io.Reader, ro RestoreOptions) (*Monitor, error) {
	m, err := restoreCore(r, Options{
		OnEnter: ro.OnEnter, OnLeave: ro.OnLeave,
		TopK: ro.TopK, TopKMinQ: ro.TopKMinQ, OnTopK: ro.OnTopK,
		AsyncQueue: ro.AsyncQueue, TraceDepth: ro.TraceDepth,
	})
	if err != nil {
		return nil, err
	}
	return m.finish(), nil
}

// restoreCore decodes a checkpoint into a monitor carrying opt's
// configuration, without publishing a view or starting background
// goroutines — the recovery path replays the WAL tail first.
func restoreCore(r io.Reader, opt Options) (*Monitor, error) {
	if err := readSnapshotHeader(r); err != nil {
		return nil, err
	}
	dec := gob.NewDecoder(r)
	var ms monitorSnapshot
	if err := dec.Decode(&ms); err != nil {
		return nil, fmt.Errorf("pskyline: restore: %w", err)
	}
	m := &Monitor{
		data:            ms.Data,
		period:          ms.Period,
		opts:            opt,
		probSum:         ms.ProbSum,
		probCount:       ms.ProbCount,
		lastTS:          ms.LastTS,
		snapShardWindow: ms.ShardWindow,
	}
	if m.data == nil {
		m.data = make(map[uint64]any)
	}
	m.trace = newTraceRing(opt.TraceDepth)
	eng, err := core.RestoreFrom(dec, core.RestoreOptions{
		OnChange:           m.onChange,
		Metrics:            &m.met.eng,
		IncrementalRestore: opt.Durability.IncrementalRestore,
	})
	if err != nil {
		return nil, fmt.Errorf("pskyline: restore: %w", err)
	}
	m.eng = eng
	if err := m.initTopK(); err != nil {
		return nil, fmt.Errorf("pskyline: restore: %w", err)
	}
	m.dims = eng.Dims()
	return m, nil
}
