package pskyline

import (
	"fmt"
	"io"

	"pskyline/internal/wal"
)

// This file is the Monitor's export surface for the replication subsystem
// (internal/repl). Replication ships the durable WAL — internal/repl needs
// read access to the log, the stream configuration to vet a follower's
// handshake, and the installed checkpoints for fast catch-up. The package
// boundary runs one way: internal/repl imports pskyline, never the reverse.

// StreamConfigSummary summarizes the parameters that define a stream's semantics.
// A primary and its replicas must agree on all of them — replicating
// between differently configured operators would diverge silently, so the
// replication handshake compares summaries and refuses a mismatch, exactly
// as Open refuses a checkpoint recorded under different Options.
type StreamConfigSummary struct {
	Dims       int
	Window     int
	Period     int64
	Thresholds []float64
}

// ConfigSummary reports the monitor's stream configuration.
func (m *Monitor) ConfigSummary() StreamConfigSummary {
	m.mu.Lock()
	defer m.mu.Unlock()
	return StreamConfigSummary{
		Dims:       m.eng.Dims(),
		Window:     m.eng.Window(),
		Period:     m.period,
		Thresholds: m.eng.Thresholds(),
	}
}

// Equal reports whether two stream configurations describe the same
// operator semantics.
func (c StreamConfigSummary) Equal(o StreamConfigSummary) bool {
	if c.Dims != o.Dims || c.Window != o.Window || c.Period != o.Period ||
		len(c.Thresholds) != len(o.Thresholds) {
		return false
	}
	for i, q := range c.Thresholds {
		if o.Thresholds[i] != q {
			return false
		}
	}
	return true
}

// NextSeq reports the sequence number the next ingested element will be
// assigned — equivalently, the number of elements applied so far. On a
// replica this is the replication apply position.
func (m *Monitor) NextSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eng.NextSeq()
}

// CommitWaiter is the semi-sync replication hook: after a push is applied
// and locally durable, the monitor calls the installed waiter with the
// sequence one past the last element of the push (the engine position the
// replication quorum must reach). The waiter blocks until the quorum acks,
// an ack deadline degrades the stream to async (returning nil — the push
// succeeded locally), or the replication server shuts down (returning its
// sticky error, which the push propagates: the element is applied and
// durable, but the semi-sync guarantee was not met).
type CommitWaiter func(seq uint64) error

// SetCommitWaiter installs (or with nil, removes) the semi-sync commit
// waiter. The waiter runs outside the monitor's ingest lock, so it may call
// back into read-side Monitor methods (ConfigSummary, NextSeq) freely —
// the replication handshake does exactly that while pushes wait.
func (m *Monitor) SetCommitWaiter(fn CommitWaiter) {
	if fn == nil {
		m.commitWaiter.Store(nil)
		return
	}
	m.commitWaiter.Store(&fn)
}

// commitWait invokes the installed commit waiter, if any, for a push whose
// last element brought the engine to position seq.
func (m *Monitor) commitWait(seq uint64) error {
	fn := m.commitWaiter.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(seq)
}

// ReplicationLog exposes the monitor's write-ahead log for read-side
// consumers (segment listing, tail following). It returns nil when the
// monitor is not durable — replication requires a WAL on both ends.
func (m *Monitor) ReplicationLog() *wal.WAL {
	return m.wal
}

// DurabilityDir reports the durability directory, or "" when the monitor
// is not durable.
func (m *Monitor) DurabilityDir() string {
	return m.dur.Dir
}

// NewestCheckpoint opens the newest installed checkpoint blob for reading,
// returning its stream position, its size, and a reader over the raw blob
// bytes. ok is false when the monitor is not durable or no checkpoint has
// been installed yet. The caller closes the reader.
func (m *Monitor) NewestCheckpoint() (seq uint64, size int64, r io.ReadCloser, ok bool, err error) {
	if m.wal == nil {
		return 0, 0, nil, false, nil
	}
	refs, err := wal.Checkpoints(m.fsys, m.dur.Dir)
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("pskyline: checkpoints: %w", err)
	}
	if len(refs) == 0 {
		return 0, 0, nil, false, nil
	}
	ref := refs[0]
	info, err := m.fsys.Stat(ref.Path)
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("pskyline: checkpoint %s: %w", ref.Path, err)
	}
	f, err := m.fsys.Open(ref.Path)
	if err != nil {
		return 0, 0, nil, false, fmt.Errorf("pskyline: checkpoint %s: %w", ref.Path, err)
	}
	return ref.Seq, info.Size(), f, true, nil
}
