package pskyline_test

import (
	"math"
	"testing"

	"pskyline"
)

// FuzzShardRoute locks in the Router contract for both built-in routers:
// total (always in range, for any float input including NaN/Inf/-0),
// deterministic (same input, same shard), and rendezvous-stable (growing the
// shard count from n to n+1 either keeps an element in place or moves it to
// the NEW shard — never shuffles it between existing shards).
func FuzzShardRoute(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 0.5, uint8(4))
	f.Add(0.0, math.Copysign(0, -1), 1e300, 1.0, uint8(1))
	f.Add(math.NaN(), math.Inf(1), math.Inf(-1), math.NaN(), uint8(16))
	f.Add(-1e-308, 5e-324, -0.0, 0.0, uint8(7))
	f.Fuzz(func(t *testing.T, x, y, z, p float64, n uint8) {
		shards := int(n%16) + 1
		pt := []float64{x, y, z}
		routers := []pskyline.Router{
			pskyline.GridRouter{},
			pskyline.GridRouter{MantissaBits: 12},
			pskyline.BandRouter{},
			pskyline.BandRouter{Bands: 8},
		}
		for _, r := range routers {
			got := r.Route(pt, p, shards)
			if got < 0 || got >= shards {
				t.Fatalf("%T.Route(%v, %v, %d) = %d, out of range", r, pt, p, shards, got)
			}
			if again := r.Route(pt, p, shards); again != got {
				t.Fatalf("%T not deterministic: %d then %d", r, got, again)
			}
			grown := r.Route(pt, p, shards+1)
			if grown != got && grown != shards {
				t.Fatalf("%T unstable: route(%d shards)=%d but route(%d)=%d", r, shards, got, shards+1, grown)
			}
		}
	})
}

// TestRouterSignedZeroAndNaN: -0 and +0 must share a cell (they compare
// equal, so they must dominate identically and should co-locate), and every
// NaN payload must canonicalize to one cell rather than scattering.
func TestRouterSignedZeroAndNaN(t *testing.T) {
	g := pskyline.GridRouter{}
	for shards := 1; shards <= 9; shards++ {
		if a, b := g.Route([]float64{0, 1}, 0.5, shards), g.Route([]float64{math.Copysign(0, -1), 1}, 0.5, shards); a != b {
			t.Errorf("shards=%d: +0 -> %d, -0 -> %d", shards, a, b)
		}
		n1 := math.NaN()
		n2 := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different payload
		if a, b := g.Route([]float64{n1, 2}, 0.5, shards), g.Route([]float64{n2, 2}, 0.5, shards); a != b {
			t.Errorf("shards=%d: NaN payloads route to %d and %d", shards, a, b)
		}
	}
}

// TestRouterSpreads: on a diverse stream the default routers must actually
// use every shard (a constant router would be correct but useless).
func TestRouterSpreads(t *testing.T) {
	els := genShardElements(123, 2000, 3)
	for _, r := range []pskyline.Router{pskyline.GridRouter{}, pskyline.BandRouter{}} {
		const shards = 8
		var hits [shards]int
		for i := range els {
			hits[r.Route(els[i].Point, els[i].Prob, shards)]++
		}
		for i, h := range hits {
			if h == 0 {
				t.Errorf("%T: shard %d received nothing over 2000 diverse elements", r, i)
			}
		}
	}
}
